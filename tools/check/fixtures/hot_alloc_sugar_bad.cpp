// Fixture: allocations the regex linter cannot resolve — typedef sugar,
// `auto` with an allocating initializer, std::string. Linted under a
// src/nn/ path, every marked line must trip hot-loop-alloc.
#include <cstddef>
#include <string>
#include <vector>

namespace imap {

using Buffer = std::vector<double>;
typedef std::vector<int> IndexList;

std::vector<double> make_row(std::size_t n);

void sugar_allocs(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    Buffer row(n);                      // BAD: alias of std::vector<double>
    IndexList idx;                      // BAD: typedef of std::vector<int>
    auto copy = std::vector<double>(n); // BAD: auto, explicit construction
    auto made = make_row(n);            // BAD: auto via function return type
    std::string label = "row";          // BAD: std::string allocates
    row[0] = static_cast<double>(idx.size() + copy.size() + made.size() +
                                 label.size());
  }
}

std::vector<double> make_row(std::size_t n) {
  return std::vector<double>(n, 0.0);
}

}  // namespace imap
