// Fixture: shared-Rng draws reachable from parallel worker lambdas — every
// marked site must trip rng-parallel.
#include "common/rng.h"
#include "common/thread_pool.h"
#include <cstddef>
#include <vector>

namespace imap {

// Draw through a helper: the TU-local call graph must still see it.
Rng g_rng;
double noisy() { return g_rng.uniform(0.0, 1.0); }

void direct_draw(Rng& rng, std::vector<double>& out) {
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = rng.normal();  // BAD: schedule-ordered draw on shared engine
  });
}

void transitive_draw(std::vector<double>& out) {
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = noisy();  // BAD: helper draws from the shared engine
  });
}

void engine_keyed_split(Rng& rng, std::vector<double>& out) {
  parallel_for(out.size(), [&](std::size_t i) {
    // BAD: split is seed-pure but next_u64 advances the shared engine, so
    // the stream key itself depends on the schedule.
    Rng local = rng.split(rng.next_u64());
    out[i] = local.uniform(0.0, 1.0);
  });
}

void chunked_draw(Rng& rng, std::vector<double>& out) {
  parallel_for_chunked(out.size(), 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      out[i] = rng.uniform(0.0, 1.0);  // BAD: chunked entry point too
  });
}

}  // namespace imap
