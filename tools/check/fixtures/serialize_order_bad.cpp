// Fixture: save_state/load_state bodies that cannot round-trip — member
// order skew, kind skew, and a trailing write with no matching read. Each
// class must produce exactly one serialize-symmetry finding.
#include "common/serialize.h"
#include <cstdint>

namespace imap {

class SwappedOrder {
 public:
  void save_state(BinaryWriter& w) const {
    w.write_u64(n_);
    w.write_f64(mean_);  // BAD: load reads m2_ at this position
    w.write_f64(m2_);
  }
  void load_state(BinaryReader& r) {
    n_ = r.read_u64();
    m2_ = r.read_f64();
    mean_ = r.read_f64();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

class KindSkew {
 public:
  void save_state(BinaryWriter& w) const {
    w.write_u64(count_);  // BAD: load reads f64 at this position
    w.write_f64(scale_);
  }
  void load_state(BinaryReader& r) {
    count_ = static_cast<std::uint64_t>(r.read_f64());
    scale_ = r.read_f64();
  }

 private:
  std::uint64_t count_ = 0;
  double scale_ = 1.0;
};

class TrailingWrite {
 public:
  void save_state(BinaryWriter& w) const {
    w.write_f64(lo_);
    w.write_f64(hi_);  // BAD: load never reads a second field
  }
  void load_state(BinaryReader& r) { lo_ = r.read_f64(); }

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace imap
