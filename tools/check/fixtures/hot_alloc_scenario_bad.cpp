// Fixture: channel-pipeline shapes — per-tick scratch constructed inside
// the corrupt/perturb loops of a scenario channel stack. Checked under a
// src/scenario/ path, every marked line must trip hot-loop-alloc; the
// pipeline runs on every environment step of every rollout slot and must
// reuse its buffers.
#include <cstddef>
#include <vector>

namespace imap {

void corrupt_observations(std::size_t ticks, std::size_t obs_dim) {
  for (std::size_t t = 0; t < ticks; ++t) {
    std::vector<double> delayed(obs_dim);   // BAD: per-tick delay-ring slot
    std::vector<double> noisy(obs_dim);     // BAD: per-tick noise scratch
    noisy[0] = delayed.size() > 0 ? 1.0 : 0.0;
  }
}

void perturb_actions(std::size_t ticks, std::size_t act_dim) {
  std::size_t t = 0;
  while (t < ticks) {
    std::vector<double> out(act_dim);  // BAD: per-tick perturbed action
    out[0] = static_cast<double>(t);
    ++t;
  }
}

}  // namespace imap
