// Fixture: raw struct I/O on descriptors — the exact shapes the ipc-framing
// rule bans in src/. Every marked line must trip ipc-framing.
#include <cstdio>
#include <unistd.h>

namespace imap {

struct WireHeader {
  unsigned magic;
  unsigned long long payload_len;
};

void send_header(int fd, const WireHeader& h) {
  ::write(fd, &h, sizeof(h));                          // BAD: &struct+sizeof
  write(fd, reinterpret_cast<const char*>(&h), 16);    // BAD: cast of &struct
}

bool recv_header(int fd, WireHeader& h) {
  return ::read(fd, &h, sizeof h) ==                   // BAD: &struct+sizeof
         static_cast<long>(sizeof h);
}

void spool_header(std::FILE* f, const WireHeader& h) {
  std::size_t n = sizeof(WireHeader);
  fwrite(&h, n, 1, f);                                 // BAD: address-of buf
}

void load_header(std::FILE* f, WireHeader* h) {
  fread(h, sizeof(WireHeader), 1, f);                  // BAD: sizeof-sized
}

}  // namespace imap
