#!/usr/bin/env python3
"""imap_check — AST-grade determinism analyzer for the imap codebase.

Semantic successor to the regex linter (tools/lint/imap_lint.py): where the
linter pattern-matches lines, imap_check analyzes real program structure —
scope nesting, lambda-to-call attachment, alias-resolved declaration types,
typed comparisons, serialize op sequences — and enforces the build-flag
contract recorded in compile_commands.json. The two tools share the
allowlist / inline-suppression format and agree on the rules they both
implement (pinned by tools/check/test_imap_check.py).

Checks (see checks.py for the full semantics):

  rng-parallel        Rng draws reachable from a parallel_for / submit lambda
                      must go through a slot-keyed Rng::split.
  nondet-source       rand/random_device/mt19937/wall-clock reads banned in src/.
  hot-loop-alloc      allocating declarations inside loops in hot-path layers,
                      resolved through typedefs, `auto`, and std::string.
  float-eq            ==/!= on floating expressions, typed via the AST.
  serialize-symmetry  save_state/load_state field sequences must mirror,
                      member by member, grouped per archive section.
  kernel-flags        every kernel TU carries -ffp-contract=off (+-mno-fma on
                      x86) and exactly its declared ISA flags in
                      compile_commands.json.
  fma-intrinsic       FMA intrinsics / std::fma banned outside allowlisted
                      sites.
  ipc-framing         raw `write(fd, &struct, sizeof ...)`-style descriptor
                      I/O banned in src/; cross-process messages go through
                      Archive sections framed by proc::Channel.

Frontends:

  * clang   — `clang++ -fsyntax-only -Xclang -ast-dump=json` per TU, flags
              taken verbatim from compile_commands.json (highest fidelity).
  * builtin — the hermetic tokenizer/parser in cpp_ast.py (no compiler
              dependency; what CI uses in containers without LLVM).
  * auto    — clang when a working clang++ exists, builtin otherwise; a TU
              whose clang parse fails falls back to builtin with a warning.

Compilation database:

  The tree scan REQUIRES compile_commands.json (default:
  <root>/build/compile_commands.json, see --compdb). A missing or stale
  database is a hard error with a re-run recipe — the kernel-flags contract
  can only be checked against what the build actually does.

Suppression (shared format with imap_lint):

  * inline:     // imap-check: allow(rule-name)
                (// imap-lint: allow(rule-name) is honored for the rules the
                two tools share, so a site is never annotated twice)
  * allowlist:  tools/check/check_allowlist.txt — `rule-name  path-glob`
                lines, fnmatch against the repo-relative posix path.

Exit codes: 0 clean, 1 findings, 2 usage/database/internal error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import platform
import re
import shutil
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import checks     # noqa: E402
import cpp_ast    # noqa: E402

SUPPRESS_RE = re.compile(
    r"imap-(?:check|lint):\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

# Rules also implemented by imap_lint: an `imap-lint: allow(...)` suppression
# is honored for these (one annotation per site, never two).
LINT_SHARED = {"float-eq", "hot-loop-alloc", "serialize-symmetry"}
LINT_RULE_MAP = {"rng-discipline": "nondet-source"}

CXX_EXTENSIONS = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

# Sanctioned homes exempt from the corresponding rule (they implement it).
RULE_HOME = {
    "nondet-source": ("src/common/rng.h", "src/common/rng.cpp"),
    "ipc-framing": ("src/common/proc.h", "src/common/proc.cpp"),
}

# Kernel TUs that are architecture-gated: absent from the database on the
# other architecture by design, not staleness.
ARCH_ONLY = {
    "src/nn/kernel_avx2.cpp": "x86",
    "src/nn/kernel_avx512.cpp": "x86",
    "src/nn/kernel_neon.cpp": "arm",
}


def machine_family() -> str:
    m = platform.machine().lower()
    return "arm" if ("aarch64" in m or "arm" in m) else "x86"


# ---------------------------------------------------------------------------
# compile_commands.json
# ---------------------------------------------------------------------------

def load_compdb(path: str, root: str):
    """Load and validate the compilation database. Exits(2) with a recipe on
    a missing or stale database."""
    if not os.path.exists(path):
        print(
            f"imap_check: compilation database not found: {path}\n"
            "  The kernel-flags contract is checked against what the build "
            "actually does,\n"
            "  so imap_check needs compile_commands.json. Generate it with:\n"
            "      cmake -B build -S .\n"
            "  (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default in this "
            "tree), then re-run.",
            file=sys.stderr)
        sys.exit(2)
    try:
        with open(path, encoding="utf-8") as fh:
            db = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"imap_check: cannot parse {path}: {e}", file=sys.stderr)
        sys.exit(2)

    # Staleness: every src/ TU on disk must have an entry (modulo arch-gated
    # kernels), and every entry's file must still exist.
    fam = machine_family()
    db_files = set()
    for entry in db:
        f = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(f, root).replace(os.sep, "/")
        db_files.add(rel)
        if not os.path.exists(f) and rel.startswith("src/"):
            print(
                f"imap_check: stale compilation database: {rel} is listed "
                "but no longer exists.\n  Re-run cmake to regenerate "
                "compile_commands.json.", file=sys.stderr)
            sys.exit(2)
    missing = []
    src_root = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for fn in sorted(filenames):
            if os.path.splitext(fn)[1] != ".cpp":
                continue
            rel = os.path.relpath(os.path.join(dirpath, fn),
                                  root).replace(os.sep, "/")
            if rel in db_files:
                continue
            if ARCH_ONLY.get(rel) not in (None, fam):
                continue  # other-arch kernel TU: absent by design
            missing.append(rel)
    if missing:
        print(
            "imap_check: stale compilation database — these src/ TUs have "
            "no entry:\n    " + "\n    ".join(missing) +
            "\n  Re-run cmake to regenerate compile_commands.json.",
            file=sys.stderr)
        sys.exit(2)
    return db


# ---------------------------------------------------------------------------
# frontends
# ---------------------------------------------------------------------------

def find_clang() -> str | None:
    exe = os.environ.get("IMAP_CLANG")
    if exe:
        return exe if shutil.which(exe) else None
    for name in ("clang++", "clang++-18", "clang++-17", "clang++-16",
                 "clang++-15", "clang++-14"):
        if shutil.which(name):
            return name
    return None


# relpath -> (parsed header model, its own project includes)
_header_cache: dict[str, tuple] = {}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


def _project_includes(root: str, text: str):
    for inc in INCLUDE_RE.findall(text):
        hdr = os.path.join(root, "src", inc)
        if os.path.isfile(hdr):
            yield os.path.relpath(hdr, root).replace(os.sep, "/")


def parse_with_headers(root: str, relpath: str) -> "cpp_ast.TuModel":
    """Builtin-frontend parse of one file, with cross-TU facts (class member
    types, aliases, return types) merged in from its project headers,
    followed transitively — the micro-frontend's stand-in for real header
    inclusion."""
    ap = os.path.join(root, relpath)
    with open(ap, encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    # gather header facts first, then parse the TU with them seeded so
    # auto-inference sees header-declared return types during the parse
    seed = cpp_ast.TuModel("<headers>")
    seen = {relpath}
    queue = list(_project_includes(root, text))
    while queue:
        hrel = queue.pop(0)
        if hrel in seen:
            continue
        seen.add(hrel)
        if hrel not in _header_cache:
            try:
                with open(os.path.join(root, hrel), encoding="utf-8",
                          errors="replace") as fh:
                    htext = fh.read()
                _header_cache[hrel] = (cpp_ast.parse_file(hrel, htext),
                                       list(_project_includes(root, htext)))
            except (OSError, RecursionError):
                continue
        hmodel, hincs = _header_cache[hrel]
        cpp_ast.merge_model(seed, hmodel)
        queue.extend(hincs)
    return cpp_ast.parse_file(relpath, text, seed=seed)


def build_model(root: str, relpath: str, frontend: str, compdb_entry,
                clang_exe: str | None):
    """Build a TuModel with the selected frontend. Headers and frontend
    'builtin' use the micro parser; 'clang'/'auto' use the JSON AST dump when
    possible, falling back to builtin on any failure."""
    use_clang = (frontend in ("clang", "auto") and clang_exe is not None and
                 compdb_entry is not None and relpath.endswith(".cpp"))
    if use_clang:
        try:
            import clang_ast
            base = parse_with_headers(root, relpath)
            model = clang_ast.parse_tu(clang_exe, compdb_entry, root, relpath,
                                       base=base)
            if model is not None:
                return model, "clang"
        except Exception as e:  # noqa: BLE001 — any clang failure => builtin
            if frontend == "clang":
                print(f"imap_check: clang frontend failed on {relpath}: {e}",
                      file=sys.stderr)
                sys.exit(2)
            print(f"imap_check: note: clang frontend failed on {relpath} "
                  f"({e}); using builtin frontend", file=sys.stderr)
    return parse_with_headers(root, relpath), "builtin"


# ---------------------------------------------------------------------------
# suppression / allowlist
# ---------------------------------------------------------------------------

def load_allowlist(path: str):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or parts[0] not in checks.FIXITS:
                print(f"{path}:{lineno}: malformed allowlist entry: "
                      f"{raw.rstrip()}", file=sys.stderr)
                sys.exit(2)
            entries.append((parts[0], parts[1]))
    return entries


def allowed(entries, rule: str, relpath: str) -> bool:
    return any(r == rule and fnmatch.fnmatch(relpath, glob)
               for r, glob in entries)


def suppressed_lines(root: str, relpath: str):
    """Map line-number -> set of suppressed rules from inline annotations."""
    out: dict[int, set] = {}
    try:
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as fh:
            for lineno, raw in enumerate(fh, 1):
                m = SUPPRESS_RE.search(raw)
                if m:
                    rules = {r.strip() for r in m.group(1).split(",")}
                    mapped = {LINT_RULE_MAP.get(r, r) for r in rules}
                    out[lineno] = rules | mapped
    except OSError:
        pass
    return out


# ---------------------------------------------------------------------------
# per-file analysis
# ---------------------------------------------------------------------------

def analyze_file(root: str, relpath: str, frontend: str, compdb_entry,
                 clang_exe):
    model, used = build_model(root, relpath, frontend, compdb_entry,
                              clang_exe)
    findings = []
    findings += checks.check_rng_parallel(model)
    findings += checks.check_nondet_source(
        model, relpath, home_exempt=RULE_HOME["nondet-source"])
    findings += checks.check_hot_loop_alloc(model, relpath)
    findings += checks.check_float_eq(model)
    findings += checks.check_serialize_symmetry(model, relpath)
    findings += checks.check_fma_intrinsics(model, relpath)
    findings += checks.check_ipc_framing(
        model, relpath, home_exempt=RULE_HOME["ipc-framing"])

    sup = suppressed_lines(root, relpath)
    kept = [f for f in findings if f.rule not in sup.get(f.line, set())]
    return kept, used


def collect_sources(root: str, compdb) -> list[str]:
    """Repo-relative paths of everything the tree scan analyzes: all src/
    TUs in the database plus all src/ headers."""
    rels = set()
    for entry in compdb:
        f = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(f, root).replace(os.sep, "/")
        if rel.startswith("src/"):
            rels.add(rel)
    src_root = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for fn in sorted(filenames):
            if os.path.splitext(fn)[1] in (".h", ".hpp"):
                rels.add(os.path.relpath(os.path.join(dirpath, fn),
                                         root).replace(os.sep, "/"))
    return sorted(rels)


def compdb_by_rel(root: str, compdb) -> dict:
    out = {}
    for entry in compdb:
        f = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        out[os.path.relpath(f, root).replace(os.sep, "/")] = entry
    return out


def main(argv) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".",
                    help="repo root (paths are relative to it)")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (default "
                         "<root>/build/compile_commands.json; 'none' to "
                         "skip the database-driven checks — only valid with "
                         "explicit paths)")
    ap.add_argument("--frontend", choices=("auto", "builtin", "clang"),
                    default="auto",
                    help="AST frontend (auto: clang++ if available)")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default "
                         "<root>/tools/check/check_allowlist.txt)")
    ap.add_argument("paths", nargs="*",
                    help="files to analyze (default: all src/ TUs in the "
                         "compilation database + all src/ headers)")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    allowlist_path = args.allowlist or os.path.join(
        root, "tools/check/check_allowlist.txt")
    entries = load_allowlist(allowlist_path)

    compdb = None
    compdb_path = args.compdb or os.path.join(root, "build",
                                              "compile_commands.json")
    if args.compdb == "none":
        if not args.paths:
            print("imap_check: --compdb none requires explicit paths "
                  "(the tree scan needs the database)", file=sys.stderr)
            return 2
    else:
        compdb = load_compdb(compdb_path, root)

    clang_exe = find_clang() if args.frontend in ("auto", "clang") else None
    if args.frontend == "clang" and clang_exe is None:
        print("imap_check: --frontend clang but no clang++ found "
              "(set IMAP_CLANG or install clang)", file=sys.stderr)
        return 2

    if args.paths:
        files = []
        for p in args.paths:
            ap_ = p if os.path.isabs(p) else os.path.join(root, p)
            if os.path.isdir(ap_):
                for dirpath, _d, fns in os.walk(ap_):
                    for fn in sorted(fns):
                        if os.path.splitext(fn)[1] in CXX_EXTENSIONS:
                            files.append(os.path.relpath(
                                os.path.join(dirpath, fn),
                                root).replace(os.sep, "/"))
            else:
                files.append(os.path.relpath(ap_, root).replace(os.sep, "/"))
    else:
        files = collect_sources(root, compdb)

    by_rel = compdb_by_rel(root, compdb) if compdb else {}

    all_findings = []
    frontends_used = set()
    for rel in files:
        kept, used = analyze_file(root, rel, args.frontend, by_rel.get(rel),
                                  clang_exe)
        frontends_used.add(used)
        for f in kept:
            if not allowed(entries, f.rule, f.path):
                all_findings.append(f)

    # database-driven checks (kernel flag contract)
    if compdb is not None:
        for f in checks.check_kernel_flags(compdb, root,
                                           platform.machine().lower()):
            if not allowed(entries, f.rule, f.path):
                all_findings.append(f)

    all_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in all_findings:
        print(f)
    n = len(all_findings)
    fe = "+".join(sorted(frontends_used)) or "none"
    print(f"imap_check: {len(files)} files checked "
          f"(frontend: {fe}), {n} finding(s)")
    return 1 if n else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
