#!/usr/bin/env python3
"""Self-test matrix for imap_check (tools/check).

Mirrors the PR-2 lint harness (tools/lint/test_imap_lint.py): every check is
pinned by a good/bad fixture pair under tools/check/fixtures/, suppression
and allowlist semantics are exercised end-to-end, the CLI exit-code contract
(0 clean / 1 findings / 2 usage-or-database error) is verified through
subprocess runs, and a regression class asserts that imap_check and the
regex linter agree fire/not-fire on the rules they both implement, using the
*linter's own* fixtures as the shared corpus.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "fixtures")
KERNEL_TREE = os.path.join(FIXTURES, "kernel_tree")
LINT_DIR = os.path.join(REPO, "tools", "lint")
LINT_FIXTURES = os.path.join(LINT_DIR, "fixtures")

sys.path.insert(0, HERE)
sys.path.insert(0, LINT_DIR)

import checks      # noqa: E402
import imap_check  # noqa: E402
import imap_lint   # noqa: E402


def check_fixture(filename, relpath, fixdir=FIXTURES, frontend="builtin"):
    """Analyze one fixture as if it lived at `relpath` in a scratch tree."""
    with tempfile.TemporaryDirectory() as tmp:
        dst = os.path.join(tmp, relpath)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        shutil.copy(os.path.join(fixdir, filename), dst)
        findings, used = imap_check.analyze_file(
            tmp, relpath, frontend, None, None)
    return findings


def check_snippet(code, relpath):
    """Analyze an inline snippet at `relpath` in a scratch tree."""
    with tempfile.TemporaryDirectory() as tmp:
        dst = os.path.join(tmp, relpath)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        with open(dst, "w", encoding="utf-8") as fh:
            fh.write(code)
        findings, _ = imap_check.analyze_file(tmp, relpath, "builtin",
                                              None, None)
    return findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


def lines_of(findings, rule=None):
    return sorted(f.line for f in findings if rule is None or f.rule == rule)


class TestRngParallel(unittest.TestCase):
    def test_bad_fixture_flags_every_annotated_site(self):
        fs = check_fixture("rng_parallel_bad.cpp",
                           "src/rl/rng_parallel_bad.cpp")
        self.assertEqual(rules_of(fs), ["rng-parallel"])
        # direct draw, transitive helper, engine-keyed split (draw + key),
        # unkeyed stream, chunked entry point
        self.assertEqual(lines_of(fs), [16, 22, 30, 30, 31, 38])

    def test_good_fixture_is_clean(self):
        fs = check_fixture("rng_parallel_good.cpp",
                           "src/rl/rng_parallel_good.cpp")
        self.assertEqual(fs, [])


class TestHotLoopAlloc(unittest.TestCase):
    def test_bad_fixture_resolves_sugar(self):
        fs = check_fixture("hot_alloc_sugar_bad.cpp",
                           "src/nn/hot_alloc_sugar_bad.cpp")
        self.assertEqual(rules_of(fs), ["hot-loop-alloc"])
        # alias, typedef, auto-construction, auto-via-return, std::string
        self.assertEqual(lines_of(fs), [17, 18, 19, 20, 21])

    def test_good_fixture_is_clean(self):
        fs = check_fixture("hot_alloc_sugar_good.cpp",
                           "src/nn/hot_alloc_sugar_good.cpp")
        self.assertEqual(fs, [])

    def test_cold_path_is_exempt(self):
        fs = check_fixture("hot_alloc_sugar_bad.cpp",
                           "src/common/hot_alloc_sugar_bad.cpp")
        self.assertEqual(lines_of(fs, "hot-loop-alloc"), [])

    def test_serving_layer_is_a_hot_path(self):
        # Per-request action row / response text / scatter buffer inside the
        # dispatch loops — src/serve/ answers requests at rate and is held to
        # the same allocation-free steady state as the kernels.
        fs = check_fixture("hot_alloc_serve_bad.cpp",
                           "src/serve/hot_alloc_serve_bad.cpp")
        self.assertEqual(rules_of(fs), ["hot-loop-alloc"])
        self.assertEqual(lines_of(fs), [13, 14, 23])

    def test_serving_layer_good_fixture_is_clean(self):
        fs = check_fixture("hot_alloc_serve_good.cpp",
                           "src/serve/hot_alloc_serve_good.cpp")
        self.assertEqual(fs, [])

    def test_scenario_layer_is_a_hot_path(self):
        # Per-tick delay-ring / noise / perturbed-action scratch inside the
        # channel-pipeline loops — src/scenario/ corrupts observations on
        # every environment step of every rollout slot and is held to the
        # same allocation-free steady state as the engine it feeds.
        fs = check_fixture("hot_alloc_scenario_bad.cpp",
                           "src/scenario/hot_alloc_scenario_bad.cpp")
        self.assertEqual(rules_of(fs), ["hot-loop-alloc"])
        self.assertEqual(lines_of(fs), [13, 14, 22])

    def test_scenario_layer_good_fixture_is_clean(self):
        fs = check_fixture("hot_alloc_scenario_good.cpp",
                           "src/scenario/hot_alloc_scenario_good.cpp")
        self.assertEqual(fs, [])


class TestFloatEq(unittest.TestCase):
    def test_bad_fixture_types_computed_expressions(self):
        fs = check_fixture("float_eq_bad.cpp", "src/common/float_eq_bad.cpp")
        self.assertEqual(rules_of(fs), ["float-eq"])
        # computed/computed, alias, call results, loop header
        self.assertEqual(lines_of(fs), [13, 17, 21, 23])

    def test_good_fixture_is_clean(self):
        fs = check_fixture("float_eq_good.cpp",
                           "src/common/float_eq_good.cpp")
        self.assertEqual(fs, [])


class TestSerializeSymmetry(unittest.TestCase):
    def test_bad_fixture_one_finding_per_class(self):
        fs = check_fixture("serialize_order_bad.cpp",
                           "src/common/serialize_order_bad.cpp")
        self.assertEqual(rules_of(fs), ["serialize-symmetry"])
        # SwappedOrder (order skew), KindSkew (u64 vs f64), TrailingWrite
        self.assertEqual(lines_of(fs), [18, 35, 48])
        msgs = " | ".join(f.message for f in fs)
        self.assertIn("mean_", msgs)
        self.assertIn("m2_", msgs)

    def test_good_fixture_is_clean(self):
        fs = check_fixture("serialize_order_good.cpp",
                           "src/common/serialize_order_good.cpp")
        self.assertEqual(fs, [])


class TestNondetSource(unittest.TestCase):
    def test_bad_fixture_flags_every_source(self):
        fs = check_fixture("nondet_source_bad.cpp",
                           "src/common/nondet_source_bad.cpp")
        self.assertEqual(rules_of(fs), ["nondet-source"])
        # chrono now, time, srand, std::rand, random_device, mt19937_64
        self.assertEqual(lines_of(fs), [11, 13, 17, 18, 22, 23])

    def test_rng_home_is_exempt(self):
        fs = check_fixture("nondet_source_bad.cpp", "src/common/rng.cpp")
        self.assertEqual(lines_of(fs, "nondet-source"), [])


class TestFmaIntrinsic(unittest.TestCase):
    def test_bad_fixture_flags_fused_forms_only(self):
        fs = check_fixture("fma_intrinsic_bad.cpp",
                           "src/nn/fma_intrinsic_bad.cpp")
        self.assertEqual(rules_of(fs), ["fma-intrinsic"])
        # fmadd, fnmsub, masked avx512 form, NEON vfma, libm fma;
        # integer madd and non-fused vmla stay quiet
        self.assertEqual(lines_of(fs), [14, 15, 23, 31, 38])

    def test_outside_src_is_exempt(self):
        fs = check_fixture("fma_intrinsic_bad.cpp",
                           "tests/fma_intrinsic_bad.cpp")
        self.assertEqual(lines_of(fs, "fma-intrinsic"), [])


class TestIpcFraming(unittest.TestCase):
    def test_bad_fixture_flags_every_raw_shape(self):
        fs = check_fixture("ipc_framing_bad.cpp",
                           "src/common/ipc_framing_bad.cpp")
        self.assertEqual(rules_of(fs), ["ipc-framing"])
        # ::write &h+sizeof, write reinterpret_cast(&h), ::read &h+sizeof,
        # fwrite &h, fread sizeof-sized
        self.assertEqual(lines_of(fs), [14, 15, 19, 25, 29])

    def test_good_fixture_is_clean(self):
        fs = check_fixture("ipc_framing_good.cpp",
                           "src/common/ipc_framing_good.cpp")
        self.assertEqual(lines_of(fs, "ipc-framing"), [])

    def test_proc_home_is_exempt(self):
        fs = check_fixture("ipc_framing_bad.cpp", "src/common/proc.cpp")
        self.assertEqual(lines_of(fs, "ipc-framing"), [])

    def test_serving_layer_is_covered(self):
        # The serving daemon moves raw bytes on sockets all day; struct-shaped
        # I/O there is exactly the torn-message risk the rule exists for.
        fs = check_fixture("ipc_framing_bad.cpp",
                           "src/serve/ipc_framing_bad.cpp")
        self.assertEqual(rules_of(fs), ["ipc-framing"])
        self.assertEqual(lines_of(fs), [14, 15, 19, 25, 29])

    def test_outside_src_is_exempt(self):
        fs = check_fixture("ipc_framing_bad.cpp",
                           "tools/ipc_framing_bad.cpp")
        self.assertEqual(lines_of(fs, "ipc-framing"), [])

    def test_inline_suppression(self):
        code = (
            "#include <unistd.h>\n"
            "struct H { int a; };\n"
            "void f(int fd, const H& h) {\n"
            "  ::write(fd, &h, sizeof h);"
            "  // imap-check: allow(ipc-framing)\n"
            "}\n")
        fs = check_snippet(code, "src/common/raw_io.cpp")
        self.assertEqual(lines_of(fs, "ipc-framing"), [])


def kernel_compdb(template, root):
    with open(os.path.join(KERNEL_TREE, template), encoding="utf-8") as fh:
        return json.loads(fh.read().replace("@ROOT@", root))


class TestKernelFlags(unittest.TestCase):
    def test_good_database_satisfies_x86_contract(self):
        db = kernel_compdb("compile_commands.good.json.in", "/kt")
        self.assertEqual(checks.check_kernel_flags(db, "/kt", "x86_64"), [])

    def test_bad_database_violations(self):
        db = kernel_compdb("compile_commands.bad.json.in", "/kt")
        fs = checks.check_kernel_flags(db, "/kt", "x86_64")
        self.assertEqual(rules_of(fs), ["kernel-flags"])
        msgs = {f.path: f.message for f in fs}
        self.assertIn("missing required flag `-mno-fma`",
                      msgs["src/nn/kernel_scalar.cpp"])
        self.assertIn("undeclared ISA flag `-mavx512f`",
                      msgs["src/nn/kernel_avx2.cpp"])
        self.assertIn("contraction explicitly enabled",
                      msgs["src/nn/kernel_avx512.cpp"])

    def test_missing_kernel_entry_is_a_violation(self):
        db = kernel_compdb("compile_commands.good.json.in", "/kt")
        db = [e for e in db if "quant" not in e["file"]]
        fs = checks.check_kernel_flags(db, "/kt", "x86_64")
        self.assertTrue(any("no compile_commands.json entry" in f.message
                            for f in fs))

    def test_arm_contract_does_not_require_mno_fma(self):
        db = [{
            "directory": "/kt",
            "command": "g++ -std=c++17 -O2 -ffp-contract=off "
                       "-c src/nn/kernel_scalar.cpp -o k.o",
            "file": "src/nn/kernel_scalar.cpp",
        }, {
            "directory": "/kt",
            "command": "g++ -std=c++17 -O2 -ffp-contract=off "
                       "-c src/nn/kernel_neon.cpp -o n.o",
            "file": "src/nn/kernel_neon.cpp",
        }, {
            "directory": "/kt",
            "command": "g++ -std=c++17 -O2 -ffp-contract=off "
                       "-c src/nn/quant.cpp -o q.o",
            "file": "src/nn/quant.cpp",
        }]
        self.assertEqual(checks.check_kernel_flags(db, "/kt", "aarch64"), [])


class TestSuppression(unittest.TestCase):
    LOOP_ALLOC = (
        "#include <vector>\n"
        "void f() {\n"
        "  for (int i = 0; i < 3; ++i) {\n"
        "    std::vector<int> v(3);  {}\n"
        "    v[0] = i;\n"
        "  }\n"
        "}\n")

    def test_imap_check_allow(self):
        code = self.LOOP_ALLOC.replace("{}", "// imap-check: "
                                             "allow(hot-loop-alloc)")
        self.assertEqual(check_snippet(code, "src/nn/x.cpp"), [])

    def test_imap_lint_allow_is_honored_for_shared_rules(self):
        code = self.LOOP_ALLOC.replace("{}", "// imap-lint: "
                                             "allow(hot-loop-alloc)")
        self.assertEqual(check_snippet(code, "src/nn/x.cpp"), [])

    def test_lint_rule_alias_maps_to_check_rule(self):
        # the linter calls its nondet rule `rng-discipline`; an existing
        # annotation under that name must silence nondet-source too
        code = ("#include <cstdlib>\n"
                "void f() {\n"
                "  srand(42);  // imap-lint: allow(rng-discipline)\n"
                "}\n")
        self.assertEqual(check_snippet(code, "src/rl/x.cpp"), [])

    def test_unsuppressed_site_still_fires(self):
        fs = check_snippet(self.LOOP_ALLOC.replace("{}", ""), "src/nn/x.cpp")
        self.assertEqual(rules_of(fs), ["hot-loop-alloc"])


class TestAllowlist(unittest.TestCase):
    def test_entries_filter_by_rule_and_glob(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "allow.txt")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("# comment\n"
                         "hot-loop-alloc  src/nn/legacy_*.cpp\n")
            entries = imap_check.load_allowlist(path)
        self.assertTrue(imap_check.allowed(
            entries, "hot-loop-alloc", "src/nn/legacy_gemm.cpp"))
        self.assertFalse(imap_check.allowed(
            entries, "hot-loop-alloc", "src/nn/mlp.cpp"))
        self.assertFalse(imap_check.allowed(
            entries, "float-eq", "src/nn/legacy_gemm.cpp"))

    def test_malformed_entry_is_fatal(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "allow.txt")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("not-a-real-rule src/nn/x.cpp\n")
            with open(os.devnull, "w") as devnull:
                stderr, sys.stderr = sys.stderr, devnull
                try:
                    with self.assertRaises(SystemExit) as cm:
                        imap_check.load_allowlist(path)
                finally:
                    sys.stderr = stderr
        self.assertEqual(cm.exception.code, 2)


def run_cli(args, cwd=None):
    return subprocess.run(
        [sys.executable, os.path.join(HERE, "imap_check.py")] + args,
        capture_output=True, text=True, cwd=cwd)


class TestCli(unittest.TestCase):
    def scratch_tree(self, tmp):
        dst = os.path.join(tmp, "src", "nn")
        os.makedirs(dst, exist_ok=True)
        shutil.copy(os.path.join(FIXTURES, "hot_alloc_sugar_bad.cpp"), dst)
        shutil.copy(os.path.join(FIXTURES, "hot_alloc_sugar_good.cpp"), dst)

    def test_exit_1_on_findings(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.scratch_tree(tmp)
            r = run_cli(["--root", tmp, "--compdb", "none",
                         "--frontend", "builtin",
                         "src/nn/hot_alloc_sugar_bad.cpp"])
        self.assertEqual(r.returncode, 1)
        self.assertIn("[hot-loop-alloc]", r.stdout)
        self.assertIn("fix-it:", r.stdout)

    def test_exit_0_on_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.scratch_tree(tmp)
            r = run_cli(["--root", tmp, "--compdb", "none",
                         "--frontend", "builtin",
                         "src/nn/hot_alloc_sugar_good.cpp"])
        self.assertEqual(r.returncode, 0)
        self.assertIn("0 finding(s)", r.stdout)

    def test_compdb_none_requires_paths(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.scratch_tree(tmp)
            r = run_cli(["--root", tmp, "--compdb", "none"])
        self.assertEqual(r.returncode, 2)

    def test_missing_database_is_fatal_with_recipe(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.scratch_tree(tmp)
            r = run_cli(["--root", tmp])
        self.assertEqual(r.returncode, 2)
        self.assertIn("compilation database not found", r.stderr)
        self.assertIn("cmake -B build", r.stderr)

    def test_stale_database_unlisted_tu_is_fatal(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.scratch_tree(tmp)
            os.makedirs(os.path.join(tmp, "build"), exist_ok=True)
            with open(os.path.join(tmp, "build", "compile_commands.json"),
                      "w", encoding="utf-8") as fh:
                json.dump([], fh)
            r = run_cli(["--root", tmp])
        self.assertEqual(r.returncode, 2)
        self.assertIn("stale compilation database", r.stderr)
        self.assertIn("hot_alloc_sugar_bad.cpp", r.stderr)

    def test_stale_database_vanished_file_is_fatal(self):
        with tempfile.TemporaryDirectory() as tmp:
            db = [{"directory": tmp, "file": "src/nn/gone.cpp",
                   "command": "g++ -c src/nn/gone.cpp"}]
            os.makedirs(os.path.join(tmp, "build"), exist_ok=True)
            os.makedirs(os.path.join(tmp, "src"), exist_ok=True)
            with open(os.path.join(tmp, "build", "compile_commands.json"),
                      "w", encoding="utf-8") as fh:
                json.dump(db, fh)
            r = run_cli(["--root", tmp])
        self.assertEqual(r.returncode, 2)
        self.assertIn("no longer exists", r.stderr)

    @unittest.skipUnless(imap_check.machine_family() == "x86",
                         "kernel tree fixture carries the x86 contract")
    def test_kernel_tree_end_to_end(self):
        for template, want in (("compile_commands.good.json.in", 0),
                               ("compile_commands.bad.json.in", 1)):
            with tempfile.TemporaryDirectory() as tmp:
                shutil.copytree(os.path.join(KERNEL_TREE, "src"),
                                os.path.join(tmp, "src"))
                os.makedirs(os.path.join(tmp, "build"), exist_ok=True)
                db = kernel_compdb(template, tmp)
                with open(os.path.join(tmp, "build",
                                       "compile_commands.json"),
                          "w", encoding="utf-8") as fh:
                    json.dump(db, fh)
                r = run_cli(["--root", tmp, "--frontend", "builtin"])
            self.assertEqual(r.returncode, want,
                             f"{template}: {r.stdout}\n{r.stderr}")
            if want:
                self.assertIn("[kernel-flags]", r.stdout)


class TestLintAgreement(unittest.TestCase):
    """imap_check and the regex linter must agree fire/not-fire on the rules
    they both implement, over the *linter's* fixture corpus."""

    # linter rule name -> imap_check rule name
    SHARED = {
        "float-eq": "float-eq",
        "hot-loop-alloc": "hot-loop-alloc",
        "serialize-symmetry": "serialize-symmetry",
        "rng-discipline": "nondet-source",
    }

    def verdicts(self, filename, relpath):
        with open(os.path.join(LINT_FIXTURES, filename),
                  encoding="utf-8") as fh:
            text = fh.read()
        lint_rules = {f.rule for f in imap_lint.lint_file(relpath, text)}
        chk_rules = set(rules_of(check_fixture(filename, relpath,
                                               fixdir=LINT_FIXTURES)))
        lint_shared = {self.SHARED[r] for r in lint_rules if r in self.SHARED}
        chk_shared = {r for r in chk_rules if r in set(self.SHARED.values())}
        return lint_shared, chk_shared

    def assert_agree(self, filename, relpath, expect):
        lint_shared, chk_shared = self.verdicts(filename, relpath)
        self.assertEqual(lint_shared, expect,
                         f"linter verdict drifted on {filename}")
        self.assertEqual(chk_shared, expect,
                         f"imap_check disagrees with linter on {filename}")

    def test_float_eq_fixture(self):
        self.assert_agree("bad_float_eq.cpp", "src/core/bad_float_eq.cpp",
                          {"float-eq"})

    def test_hot_alloc_fixture(self):
        self.assert_agree("bad_hot_alloc.cpp", "src/nn/bad_hot_alloc.cpp",
                          {"hot-loop-alloc"})

    def test_rng_fixture(self):
        self.assert_agree("bad_rng.cpp", "src/core/bad_rng.cpp",
                          {"nondet-source"})

    def test_serialize_fixture(self):
        self.assert_agree("bad_serialize_asym.h",
                          "src/rl/bad_serialize_asym.h",
                          {"serialize-symmetry"})

    def test_clean_fixture(self):
        self.assert_agree("clean.cpp", "src/core/clean.cpp", set())


@unittest.skipUnless(imap_check.find_clang(), "no clang++ on this machine")
class TestClangFrontend(unittest.TestCase):
    def test_clang_overlay_matches_builtin_verdicts(self):
        with tempfile.TemporaryDirectory() as tmp:
            rel = "src/common/float_eq_bad.cpp"
            dst = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(dst), exist_ok=True)
            shutil.copy(os.path.join(FIXTURES, "float_eq_bad.cpp"), dst)
            entry = {"directory": tmp,
                     "command": f"g++ -std=c++17 -c {rel} -o x.o",
                     "file": rel}
            fs, used = imap_check.analyze_file(
                tmp, rel, "clang", entry, imap_check.find_clang())
        self.assertEqual(used, "clang")
        self.assertEqual(rules_of(fs), ["float-eq"])
        self.assertEqual(lines_of(fs), [13, 17, 21, 23])


if __name__ == "__main__":
    unittest.main()
