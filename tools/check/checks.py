#!/usr/bin/env python3
"""checks — the imap_check semantic rule suite.

Each check consumes a TuModel (built by cpp_ast.py or clang_ast.py — the
rules are frontend-agnostic) and yields Finding objects. The compile-database
contract check (kernel-flags) consumes compile_commands.json directly.

Rules:

  rng-parallel        Engine-advancing Rng draws reachable from a
                      parallel_for / parallel_for_chunked / ThreadPool::submit
                      lambda must go through a slot-keyed Rng::split (split is
                      pure: it derives the child from the seed, never the
                      engine, so `shared.split(slot)` is deterministic while
                      `shared.uniform()` depends on thread schedule).
                      Reachability is transitive over the TU-local call graph.
  nondet-source       rand/srand/std::random_device/raw mt19937, wall-clock
                      reads (chrono ::now, time(), clock(), gettimeofday) in
                      src/ — any of these silently breaks seed determinism.
  hot-loop-alloc      Allocating declarations (std::vector<numeric>, nested
                      vectors, std::string) inside loop bodies in hot-path
                      layers, *after* resolving using/typedef aliases and
                      `auto` initializers — the sugar the regex linter cannot
                      see.
  float-eq            ==/!= where both operands are floating-point and at
                      least one is a computed (non-literal) expression, typed
                      through declarations, members, casts and known return
                      types. Literal comparisons are also flagged (shared
                      semantics with imap_lint's float-eq).
  serialize-symmetry  save_state/load_state bodies must perform the same
                      field operations in the same order, member by member
                      (grouped per archive section; sections are random
                      access, fields within one are not).
  kernel-flags        Every kernel TU in compile_commands.json must carry its
                      declared contraction + ISA flags, and nothing more.
  fma-intrinsic       FMA intrinsics / std::fma fuse mul+add into a single
                      rounding and are banned outside allowlisted sites.
  ipc-framing         Raw descriptor I/O of in-memory objects
                      (`write(fd, &hdr, sizeof hdr)` and friends) is banned
                      in src/: struct layout is ABI- and padding-dependent
                      and a torn write has no integrity check. Cross-process
                      messages go through the Archive section API framed by
                      proc::Channel (the sanctioned home, src/common/proc.*).
"""

from __future__ import annotations

import os
import re
import shlex

import cpp_ast
from cpp_ast import FLOAT_TYPES, is_allocating_type, is_float_literal

HOT_DIRS = ("src/nn/", "src/rl/", "src/attack/", "src/serve/",
            "src/scenario/")

PARALLEL_ENTRY = {"parallel_for", "parallel_for_chunked", "submit"}

# Rng methods that advance the engine (order-sensitive under concurrency).
RNG_DRAWS = {"uniform", "normal", "uniform_int", "bernoulli",
             "uniform_vec", "normal_vec", "next_u64"}
# Draw names specific enough to flag even when the receiver type is unknown.
RNG_DRAWS_STRONG = {"uniform_int", "bernoulli", "uniform_vec", "normal_vec",
                    "next_u64"}

FIXITS = {
    "rng-parallel": (
        "draw from a per-slot stream: pre-split Rng streams outside the "
        "parallel region, or derive one inside with rng.split(<slot index>) "
        "— Rng::split is seed-pure, engine draws are schedule-ordered"
    ),
    "nondet-source": (
        "all randomness flows through imap::Rng and all timing through the "
        "bench layer; wall-clock or libc randomness in src/ breaks "
        "seed-reproducibility"
    ),
    "hot-loop-alloc": (
        "hoist the allocating declaration out of the loop and reuse it "
        "(resize/assign on a caller-owned buffer, Batch, or Mlp::Workspace); "
        "the src/nn, src/rl, src/attack and src/serve hot paths must be "
        "allocation-free in steady state"
    ),
    "float-eq": (
        "exact floating-point comparison is brittle; compare with a "
        "tolerance (std::abs(a-b) <= eps) or annotate a deliberate exact "
        "sentinel with // imap-check: allow(float-eq)"
    ),
    "serialize-symmetry": (
        "make load_state read exactly what save_state wrote, field by field "
        "in the same order — a skew silently corrupts every later field in "
        "the section"
    ),
    "kernel-flags": (
        "fix the kernel TU's COMPILE_OPTIONS in src/CMakeLists.txt: every "
        "kernel TU needs -ffp-contract=off (plus -mno-fma on x86) and "
        "exactly its declared ISA flags, or FMA contraction silently changes "
        "rounding and breaks cross-backend bit-identity"
    ),
    "fma-intrinsic": (
        "fused multiply-add performs one rounding where the scalar reference "
        "performs two; use separate mul/add intrinsics (see nn/kernel_*.cpp) "
        "or allowlist a deliberately-fused site"
    ),
    "ipc-framing": (
        "serialize the object into an Archive section (BinaryWriter) and "
        "move it with proc::Channel::send/recv — framed, versioned and "
        "CRC-checked; raw `write(fd, &obj, sizeof obj)` ships padding bytes "
        "and can tear mid-frame"
    ),
}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
            f"    fix-it: {FIXITS[self.rule]}"
        )


# ---------------------------------------------------------------------------
# rng-parallel + nondet-source
# ---------------------------------------------------------------------------

def _is_rng_typed(model, scope, recv: str) -> bool | None:
    """True/False if the receiver's type is provably (not) Rng; None unknown.

    Falls back to a naming heuristic when the declaring class lives in a
    header that was not merged: an identifier containing `rng` is treated as
    an Rng (the codebase's universal convention: rng_, reset_rng_, slot.rng).
    """
    base = re.split(r"[.\[]|->", recv)[0].strip() if recv else ""
    if not base:
        return None
    d = scope.lookup(base) if scope else None
    if d is None:
        fn = (scope.enclosing("function") or scope.enclosing("lambda")) \
            if scope else None
        if fn is not None and getattr(fn, "class_name", ""):
            d = model.class_member(fn.class_name, base)
    if d is not None and d.type:
        t = model.resolve_alias(d.type)
        return t.split("<")[0].endswith("Rng")
    tail = re.split(r"\.|->", recv)[-1].strip()
    if "rng" in base.lower() or "rng" in tail.lower():
        return True
    return None


def _receiver_ok(model, lam, call) -> tuple[bool, str]:
    """Classify an Rng draw's receiver inside a parallel lambda.

    Returns (ok, why-not). OK when the stream is provably per-slot:
      * the receiver is indexed per-slot state (`slots_[i].rng`, `streams[w]`),
      * or a local declared inside the lambda whose initializer derives it
        via .split(...) keyed by a lambda parameter / lambda-local.
    """
    recv = call.recv
    if "[" in recv:
        return True, ""
    base = re.split(r"[.\[]|->", recv)[0].strip() if recv else ""
    if base:
        # declared inside the lambda (or a nested scope of it)?
        sc = call.scope
        d = None
        while sc is not None:
            if base in sc.decls:
                d = sc.decls[base]
                break
            if sc is lam:
                break
            sc = sc.parent
        if d is not None:
            init = d.init or ""
            if "split" in init:
                if any(re.search(r"\b%s\b" % re.escape(p), init)
                       for p in lam.params):
                    return True, ""
                return False, (f"`{base}` is split from a shared Rng but the "
                               "stream key does not mention a lambda "
                               "parameter — every worker draws the same "
                               "stream")
            if d.in_loop_header or not init:
                # loop variable / parameter — treat as per-slot state
                return True, ""
            return True, ""  # lambda-local by construction
    return False, (f"shared Rng `{recv or '<unknown>'}` drawn inside a "
                   "parallel region — draw order depends on thread schedule")


def check_rng_parallel(model):
    findings = []
    # 1. Per-function summary: engine draws on non-local receivers.
    #    (calls whose receiver is not a parameter/local of that function)
    def shared_draws(fn_scope):
        out = []
        for c in model.calls:
            if c.callee not in RNG_DRAWS:
                continue
            if fn_scope not in c.scope.chain():
                continue
            # skip draws inside nested lambdas; they are analyzed at their
            # own parallel entry if any
            if c.scope.enclosing("lambda") is not None and \
                    fn_scope.kind != "lambda":
                continue
            typed = _is_rng_typed(model, c.scope, c.recv)
            if typed is False:
                continue
            if typed is None and c.callee not in RNG_DRAWS_STRONG:
                continue
            base = re.split(r"[.\[]|->", c.recv)[0].strip() if c.recv else ""
            local = base and any(
                base in s.decls for s in c.scope.chain()
                if s is fn_scope or s.within("function") or
                s.within("lambda"))
            if "[" in c.recv:
                continue
            if not local:
                out.append(c)
        return out

    fn_summary = {}
    for qname, sc in model.functions.items():
        draws = shared_draws(sc)
        if draws:
            fn_summary[qname.split("::")[-1]] = draws

    # transitive closure over the TU-local call graph
    changed = True
    while changed:
        changed = False
        for qname, sc in model.functions.items():
            short = qname.split("::")[-1]
            if short in fn_summary:
                continue
            for c in model.calls:
                if sc in c.scope.chain() and c.callee in fn_summary and \
                        c.callee != short:
                    fn_summary[short] = fn_summary[c.callee]
                    changed = True
                    break

    # 2. Walk parallel entry points.
    for entry in model.calls:
        if entry.callee not in PARALLEL_ENTRY or not entry.lambda_args:
            continue
        for lam in entry.lambda_args:
            for c in model.calls:
                if lam not in c.scope.chain():
                    continue
                if c.callee in RNG_DRAWS:
                    typed = _is_rng_typed(model, c.scope, c.recv)
                    if typed is False:
                        continue
                    if typed is None and c.callee not in RNG_DRAWS_STRONG:
                        continue
                    ok, why = _receiver_ok(model, lam, c)
                    if not ok:
                        findings.append(Finding(
                            model.path, c.line, "rng-parallel",
                            f"Rng::{c.callee} in a parallel worker lambda: "
                            + why))
                elif c.callee == "split":
                    typed = _is_rng_typed(model, c.scope, c.recv)
                    if typed is False:
                        continue
                    if typed is None and "rng" not in c.recv.lower():
                        continue
                    # split itself is pure; require a slot-keyed stream id
                    arg = " ".join(c.args)
                    keyed = any(re.search(r"\b%s\b" % re.escape(p), arg)
                                for p in lam.params)
                    draws_in_key = any(d in arg for d in RNG_DRAWS)
                    if draws_in_key:
                        findings.append(Finding(
                            model.path, c.line, "rng-parallel",
                            "Rng::split keyed by an engine draw "
                            f"(`{arg.strip()}`) inside a parallel lambda — "
                            "the key value depends on thread schedule"))
                    elif not keyed and "[" not in c.recv:
                        findings.append(Finding(
                            model.path, c.line, "rng-parallel",
                            "Rng::split inside a parallel lambda is not "
                            "keyed by the worker index — every worker "
                            "derives the same stream"))
                elif c.callee in fn_summary:
                    tgt = fn_summary[c.callee][0]
                    findings.append(Finding(
                        model.path, c.line, "rng-parallel",
                        f"call to `{c.callee}` which draws from a shared Rng "
                        f"(`{tgt.recv}{tgt.callee}` at line {tgt.line}) — "
                        "reachable from a parallel worker lambda"))
    return findings


NONDET_CALLEES = {"rand", "srand", "time", "clock", "gettimeofday",
                  "timespec_get", "getrandom"}
NONDET_TYPES = {"random_device", "mt19937", "mt19937_64", "minstd_rand",
                "minstd_rand0", "ranlux24", "ranlux48", "knuth_b",
                "default_random_engine"}


def check_nondet_source(model, relpath: str, home_exempt=()):
    findings = []
    if relpath in home_exempt:
        return findings
    seen_lines = set()
    for t in model.tokens:
        if t.kind != "ident":
            continue
        if t.text in NONDET_TYPES:
            if t.line in seen_lines:
                continue
            seen_lines.add(t.line)
            findings.append(Finding(
                model.path, t.line, "nondet-source",
                f"raw standard-library RNG `{t.text}` outside "
                "src/common/rng.*"))
    for c in model.calls:
        # bare or std::-qualified only — obj.time() is somebody's member
        if c.callee in NONDET_CALLEES and c.recv in ("", "std::", "::"):
            if c.line in seen_lines:
                continue
            seen_lines.add(c.line)
            findings.append(Finding(
                model.path, c.line, "nondet-source",
                f"nondeterminism source `{c.recv}{c.callee}()`"))
        elif c.callee == "now" and ("clock" in c.recv or "chrono" in c.recv):
            findings.append(Finding(
                model.path, c.line, "nondet-source",
                f"wall-clock read `{c.recv}now()`"))
    return findings


# ---------------------------------------------------------------------------
# ipc-framing
# ---------------------------------------------------------------------------

# Descriptor-style I/O: (fd, buf, n[, flags]) — buffer is argument 1.
IPC_FD_WRITERS = {"write", "pwrite", "send", "writev"}
IPC_FD_READERS = {"read", "pread", "recv", "readv"}
# FILE*-style I/O: (buf, size, nmemb, stream) — buffer is argument 0.
IPC_FILE_CALLEES = {"fwrite", "fread"}

_ADDR_OF_RE = re.compile(
    r"^\s*(?:\(\s*(?:const\s+)?void\s*\*\s*\)\s*)?&")


def _is_raw_object_buffer(arg: str) -> bool:
    """True when the buffer argument is the address of an in-memory object
    (possibly cast): `&hdr`, `(void*)&hdr`, `reinterpret_cast<...>(&hdr)`."""
    if _ADDR_OF_RE.match(arg):
        return True
    return "reinterpret_cast" in arg and "&" in arg


def check_ipc_framing(model, relpath: str, home_exempt=()):
    """Raw descriptor I/O of in-memory objects in src/.

    Flags free / ::-qualified write/read/send/recv/pwrite/pread/fwrite/fread
    (and the vectored forms) whose buffer argument takes an object's address
    or whose size is computed with sizeof — the `write(fd, &msg, sizeof msg)`
    shape. Byte-pointer plumbing (`write(fd, p + off, n)`) is not flagged;
    that is what the sanctioned framing layer itself does.
    """
    findings = []
    if not relpath.startswith("src/") or relpath in home_exempt:
        return findings
    for c in model.calls:
        # Bare or ::-qualified only (the receiver text may carry a leading
        # statement keyword, e.g. `return ::read(...)` → "return::");
        # obj.read()/obj.send() is somebody's member API.
        if c.recv.endswith("::"):
            if c.recv[:-2].strip() not in ("", "return"):
                continue
        elif c.recv != "":
            continue
        fd_style = c.callee in IPC_FD_WRITERS or c.callee in IPC_FD_READERS
        file_style = c.callee in IPC_FILE_CALLEES
        if not (fd_style or file_style):
            continue
        if len(c.args) < 2:
            continue
        buf = c.args[0] if file_style else c.args[1]
        raw_buf = _is_raw_object_buffer(buf)
        sized = any("sizeof" in a for a in c.args)
        if not (raw_buf or sized):
            continue
        writer = c.callee in IPC_FD_WRITERS or c.callee == "fwrite"
        what = ("address-of buffer" if raw_buf else "sizeof-sized buffer")
        findings.append(Finding(
            model.path, c.line, "ipc-framing",
            f"raw struct {'write' if writer else 'read'} "
            f"`{c.recv}{c.callee}(...)` with {what} — cross-process "
            "messages must be Archive sections framed by proc::Channel"))
    return findings


# ---------------------------------------------------------------------------
# hot-loop-alloc (semantic)
# ---------------------------------------------------------------------------

def check_hot_loop_alloc(model, relpath: str):
    findings = []
    if not relpath.startswith(HOT_DIRS):
        return findings
    for d in model.decls:
        if d.is_ref or d.in_loop_header:
            continue
        if not d.scope.within("loop"):
            continue
        if not (d.scope.within("function") or d.scope.within("lambda")):
            continue
        if "thread_local" in d.init or "static" in d.init:
            continue
        canon = model.resolve_alias(d.type)
        if is_allocating_type(canon):
            findings.append(Finding(
                model.path, d.line, "hot-loop-alloc",
                f"`{d.name}` ({canon}) allocates on every iteration of an "
                "enclosing loop in a hot-path file"))
    return findings


# ---------------------------------------------------------------------------
# float-eq (semantic)
# ---------------------------------------------------------------------------

def _operand_type(model, parser_scope, toks):
    """(type, is_literal) for a comparison operand."""
    if len(toks) == 1 and toks[0].kind == "num":
        return ("double" if is_float_literal(toks[0].text) else "int"), True
    p = cpp_ast.Parser.__new__(cpp_ast.Parser)
    p.model = model
    t = p.infer_expr_type(toks, parser_scope)
    return t, False


def check_float_eq(model):
    findings = []
    for c in model.cmps:
        if c.lhs_type is not None or c.rhs_type is not None:
            # clang frontend: operand types come straight from the AST
            lt, l_lit = c.lhs_type or "", bool(c.lhs_lit)
            rt, r_lit = c.rhs_type or "", bool(c.rhs_lit)
        else:
            lt, l_lit = _operand_type(model, c.scope, c.lhs)
            rt, r_lit = _operand_type(model, c.scope, c.rhs)
        l_float = lt in FLOAT_TYPES
        r_float = rt in FLOAT_TYPES
        if l_lit and l_float and not r_lit:
            # literal float vs expression: flag unless the expression is
            # provably non-float (e.g. comparing an int to 2.0 is still
            # suspicious only if the other side is float-typed or unknown)
            if rt and not r_float:
                continue
            findings.append(Finding(
                model.path, c.line, "float-eq",
                f"exact {c.op} against floating-point literal "
                f"`{cpp_ast.join_tokens(c.lhs)}`"))
        elif r_lit and r_float and not l_lit:
            if lt and not l_float:
                continue
            findings.append(Finding(
                model.path, c.line, "float-eq",
                f"exact {c.op} against floating-point literal "
                f"`{cpp_ast.join_tokens(c.rhs)}`"))
        elif l_float and r_float and not (l_lit or r_lit):
            findings.append(Finding(
                model.path, c.line, "float-eq",
                f"exact {c.op} between computed floating-point expressions "
                f"`{cpp_ast.join_tokens(c.lhs)}` and "
                f"`{cpp_ast.join_tokens(c.rhs)}`"))
    return findings


# ---------------------------------------------------------------------------
# serialize-symmetry (semantic, member-by-member)
# ---------------------------------------------------------------------------

_WRITE_RE = re.compile(r"^write_(\w+)$")
_READ_RE = re.compile(r"^read_(\w+)$")


class _Op:
    __slots__ = ("kind", "name", "section", "line", "depth")

    def __init__(self, kind, name, section, line, depth):
        self.kind = kind        # u64/f64/vec/... or 'nested'
        self.name = name        # member-ish base identifier or ''
        self.section = section  # section name or '' (plain BinaryWriter)
        self.line = line
        self.depth = depth      # loop nesting depth relative to the function

    def describe(self):
        k = f"save/load_state({self.name})" if self.kind == "nested" \
            else f"{self.kind}({self.name or '?'})"
        return f"{k}@{self.line}"


def _base_ident(expr: str) -> str:
    """Base identifier of a save argument / load target for name matching.

    `static_cast<std::uint64_t>(foo_)` -> foo_ ; `s.ep_len` -> ep_len ;
    `v[i]` -> v ; `obs_.size()` -> '' (method result, not a member slot).
    """
    expr = expr.strip()
    m = re.match(r"(?:static_cast|reinterpret_cast)<[^>]*>\((.*)\)$", expr)
    if m:
        expr = m.group(1).strip()
    if re.search(r"\.\s*\w+\s*\(", expr) or expr.endswith(")"):
        return ""
    expr = expr.split("[")[0]
    parts = re.split(r"\.|->", expr)
    last = parts[-1].strip()
    return last if re.fullmatch(r"\w+", last) else ""


def _loop_depth(scope, fn_scope):
    d = 0
    s = scope
    while s is not None and s is not fn_scope:
        if s.kind == "loop":
            d += 1
        s = s.parent
    return d


_SECTION_NAME_RE = re.compile(r'section\s*\(\s*"([^"]*)"')


def _section_of(model, fn_scope, expr: str) -> str:
    """Resolve a writer/reader expression to its archive section name.

    Handles both the inline form (`a.section("ppo/rng")`) and the local-var
    form (`auto& meta = a.section("ppo/meta"); meta.write_u64(...)`).
    """
    expr = expr.strip()
    m = _SECTION_NAME_RE.search(expr)
    if m:
        return m.group(1)
    base = re.split(r"[.\[]|->", expr)[0].strip()
    if not base:
        return ""
    # search the function subtree for the decl (section vars are locals)
    stack = [fn_scope]
    while stack:
        s = stack.pop()
        if base in s.decls:
            d = s.decls[base]
            mm = _SECTION_NAME_RE.search(d.init or "")
            return mm.group(1) if mm else ""
        stack.extend(s.children)
    return ""


def _extract_ops(model, fn_scope, mode: str):
    """Ordered serialize ops in a save_state/load_state body.

    mode: 'save' or 'load'. Returns (ops, resolved) where resolved maps temp
    names to member names (load side).
    """
    ops = []
    assigns = {}  # temp -> member (from later `member = ...temp...`)
    calls = [c for c in model.calls if fn_scope in c.scope.chain()]
    calls.sort(key=lambda c: c.order)
    for c in calls:
        depth = _loop_depth(c.scope, fn_scope)
        if mode == "save":
            m = _WRITE_RE.match(c.callee)
            if m:
                name = _base_ident(c.args[0] if c.args else "")
                ops.append(_Op(m.group(1), name,
                               _section_of(model, fn_scope, c.recv),
                               c.line, depth))
                continue
            if c.callee == "save_state" and c.recv:
                ops.append(_Op("nested", _base_ident(c.recv) or c.recv,
                               _section_of(model, fn_scope,
                                           c.args[0] if c.args else ""),
                               c.line, depth))
        else:
            m = _READ_RE.match(c.callee)
            if m:
                target = ""
                stmt = c.stmt or ""
                am = re.match(r"^\s*(?:auto\s*&?\s*|const\s+auto\s*&?\s*)?"
                              r"([\w.\[\]>-]+?)\s*=[^=]", stmt)
                if am and f"read_{m.group(1)}" in stmt.split("=", 1)[1]:
                    target = _base_ident(am.group(1))
                ops.append(_Op(m.group(1), target,
                               _section_of(model, fn_scope, c.recv),
                               c.line, depth))
                continue
            if c.callee == "load_state" and c.recv:
                ops.append(_Op("nested", _base_ident(c.recv) or c.recv,
                               _section_of(model, fn_scope,
                                           c.args[0] if c.args else ""),
                               c.line, depth))
    if mode == "load":
        # resolve temp -> member via later move/copy assignments
        # (scan the statements that contain calls — assignments like
        # `mean_ = std::move(mean)` always involve at least one call)
        texts = set(c.stmt for c in calls if c.stmt)
        for op in ops:
            if op.name and not op.name.endswith("_"):
                pat = re.compile(r"(\w+_)\s*=\s*(?:std::move\()?\s*\b"
                                 + re.escape(op.name) + r"\b")
                for txt in texts:
                    mm = pat.search(txt)
                    if mm:
                        assigns[op.name] = mm.group(1)
                        op.name = mm.group(1)
                        break
    return ops


def check_serialize_symmetry(model, relpath: str = ""):
    findings = []

    # Header-declaration asymmetry (shared semantics with imap_lint):
    # a header declaring one side of the pair can never round-trip.
    if relpath.endswith((".h", ".hpp")):
        saves = [t for t in model.tokens
                 if t.kind == "ident" and t.text == "save_state"]
        loads = [t for t in model.tokens
                 if t.kind == "ident" and t.text == "load_state"]
        if saves and not loads:
            findings.append(Finding(
                model.path, saves[0].line, "serialize-symmetry",
                "header declares save_state but no load_state"))
        elif loads and not saves:
            findings.append(Finding(
                model.path, loads[0].line, "serialize-symmetry",
                "header declares load_state but no save_state"))

    saves_fn = {}
    loads_fn = {}
    for qname, sc in model.functions.items():
        short = qname.split("::")[-1]
        cls = sc.class_name or ""
        if short == "save_state":
            saves_fn[cls] = sc
        elif short == "load_state":
            loads_fn[cls] = sc
    for cls, save_sc in sorted(saves_fn.items()):
        load_sc = loads_fn.get(cls)
        if load_sc is None:
            continue  # other side in another TU — the header rule covers it
        s_ops = _extract_ops(model, save_sc, "save")
        l_ops = _extract_ops(model, load_sc, "load")

        # Group by archive section: sections are random-access by name, so
        # cross-section order is free; fields *within* a section are a byte
        # stream and must match operation-by-operation.
        def group(ops):
            g = {}
            for op in ops:
                g.setdefault(op.section, []).append(op)
            return g

        sg, lg = group(s_ops), group(l_ops)
        for sec in list(sg.keys()) + [k for k in lg if k not in sg]:
            so = sg.get(sec, [])
            lo = lg.get(sec, [])
            label = f"section \"{sec}\"" if sec else "payload"
            if so and not lo:
                findings.append(Finding(
                    model.path, so[0].line, "serialize-symmetry",
                    f"{cls}::save_state writes {label} but load_state never "
                    "reads it"))
                continue
            if lo and not so:
                findings.append(Finding(
                    model.path, lo[0].line, "serialize-symmetry",
                    f"{cls}::load_state reads {label} but save_state never "
                    "writes it"))
                continue
            for k in range(max(len(so), len(lo))):
                a = so[k] if k < len(so) else None
                b = lo[k] if k < len(lo) else None
                if a is None:
                    findings.append(Finding(
                        model.path, b.line, "serialize-symmetry",
                        f"{cls}::load_state reads {b.describe()} from "
                        f"{label} with no matching write in save_state"))
                    break
                if b is None:
                    findings.append(Finding(
                        model.path, a.line, "serialize-symmetry",
                        f"{cls}::save_state writes {a.describe()} to "
                        f"{label} that load_state never reads"))
                    break
                if a.kind != b.kind or a.depth != b.depth:
                    findings.append(Finding(
                        model.path, b.line, "serialize-symmetry",
                        f"{cls}: field {k + 1} of {label} diverges — save "
                        f"writes {a.describe()} but load reads "
                        f"{b.describe()}"))
                    break
                if a.name and b.name and a.name != b.name and \
                        a.name.endswith("_") and b.name.endswith("_"):
                    findings.append(Finding(
                        model.path, b.line, "serialize-symmetry",
                        f"{cls}: member order skew in {label} — save writes "
                        f"`{a.name}` where load reads into `{b.name}`"))
                    break
    return findings


# ---------------------------------------------------------------------------
# kernel-flags (compile_commands contract) + fma-intrinsic
# ---------------------------------------------------------------------------

# Per-TU flag contract. Keys are path suffixes; values: (required flags,
# allowed ISA flags). Any -m<isa> flag outside `isa` is a violation; all of
# `required` must be present. The contract is arch-specific: -mno-fma is an
# x86 flag (FMA contraction cannot be *disabled* per-TU on aarch64, where
# -ffp-contract=off alone carries the contract).
X86_CONTRACTS = {
    "src/nn/kernel_scalar.cpp": ({"-ffp-contract=off", "-mno-fma"}, set()),
    "src/nn/kernel_avx2.cpp": ({"-ffp-contract=off", "-mno-fma", "-mavx2"},
                               {"-mavx2"}),
    "src/nn/kernel_avx512.cpp": ({"-ffp-contract=off", "-mno-fma",
                                  "-mavx512f", "-mavx512bw"},
                                 {"-mavx512f", "-mavx512bw"}),
    "src/nn/quant.cpp": ({"-ffp-contract=off", "-mno-fma"}, set()),
}
ARM_CONTRACTS = {
    "src/nn/kernel_scalar.cpp": ({"-ffp-contract=off"}, set()),
    "src/nn/kernel_neon.cpp": ({"-ffp-contract=off"}, set()),
    "src/nn/quant.cpp": ({"-ffp-contract=off"}, set()),
}

ISA_FLAG_RE = re.compile(r"^-m(?!no-)(?:avx|sse|fma|f16c|bmi|aes|sha|neon|"
                         r"sve|arch=|tune=|cpu=)")


def _entry_args(entry) -> list[str]:
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry.get("command", ""))


def check_kernel_flags(compdb: list, root: str, machine: str):
    findings = []
    contracts = ARM_CONTRACTS if ("aarch64" in machine or "arm" in machine) \
        else X86_CONTRACTS
    by_suffix = {}
    for entry in compdb:
        f = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(f, root).replace(os.sep, "/")
        by_suffix[rel] = entry
    for suffix, (required, isa_allowed) in sorted(contracts.items()):
        entry = None
        for rel, e in by_suffix.items():
            if rel.endswith(suffix):
                entry = e
                rel_path = rel
                break
        if entry is None:
            findings.append(Finding(
                suffix, 1, "kernel-flags",
                f"kernel TU `{suffix}` has no compile_commands.json entry — "
                "the TU is not being built (or the database is stale; "
                "re-run cmake)"))
            continue
        args = _entry_args(entry)
        present = set(args)
        for flag in sorted(required):
            if flag not in present:
                findings.append(Finding(
                    rel_path, 1, "kernel-flags",
                    f"missing required flag `{flag}` (declared contract: "
                    f"{' '.join(sorted(required))})"))
        for a in args:
            if ISA_FLAG_RE.match(a) and a not in isa_allowed \
                    and not a.startswith(("-march=x86-64", "-mtune=generic")):
                findings.append(Finding(
                    rel_path, 1, "kernel-flags",
                    f"undeclared ISA flag `{a}` — the TU may emit "
                    "instructions outside its declared backend"))
        if "-ffp-contract=fast" in present or "-ffp-contract=on" in present:
            findings.append(Finding(
                rel_path, 1, "kernel-flags",
                "FP contraction explicitly enabled on a kernel TU"))
    return findings


# Floating fused multiply-add only: x86 fmadd/fmsub/fnmadd/fnmsub (the `f`
# is mandatory — integer _mm*_madd_epi16 is exact and fine), NEON vfma/vfms
# (fused; vmla/vmls lower to separate mul+add), and the libm fma family.
FMA_TOKEN_RE = re.compile(
    r"^_mm\d*_(?:mask_|mask3_|maskz_)?fn?m(?:add|sub)(?:_|$)"
    r"|^vfmaq?_|^vfmsq?_|^fmaf?l?$")


def check_fma_intrinsics(model, relpath: str):
    findings = []
    if not relpath.startswith("src/"):
        return findings
    seen = set()
    for t in model.tokens:
        if t.kind == "ident" and FMA_TOKEN_RE.match(t.text):
            if t.line in seen:
                continue
            seen.add(t.line)
            findings.append(Finding(
                model.path, t.line, "fma-intrinsic",
                f"fused multiply-add `{t.text}` — single-rounding FMA breaks "
                "the two-rounding scalar reference chain"))
    return findings
