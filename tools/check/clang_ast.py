"""clang JSON-AST frontend for imap_check.

Builds the same TuModel IR as the builtin micro-frontend (cpp_ast.py), but
from `clang++ -fsyntax-only -Xclang -ast-dump=json` with the TU's flags taken
verbatim from its compile_commands.json entry — compiler-accurate types,
scopes and calls, no new library dependencies.

This module is only imported when a working clang++ is found (see
imap_check.find_clang). Any failure — clang missing, the TU not parsing
under clang, an AST shape this walker does not recognise — raises, and the
driver falls back to the builtin frontend for that TU with a note.

Differential locations: in clang's JSON dump, `loc`/`range` objects omit
fields that repeat the previous location, so the walker threads (file, line)
state through the traversal and only nodes attributed to the main file are
recorded.
"""

from __future__ import annotations

import json
import os
import subprocess

import cpp_ast
from cpp_ast import Call, Cmp, Decl, Scope, Token, TuModel

# compile_commands arguments dropped for a syntax-only run
_STRIP_WITH_VALUE = {"-o", "-MF", "-MT", "-MQ", "--serialize-diagnostics"}
_STRIP = {"-c", "-MD", "-MMD", "-MP"}

_FLOAT_BUILTINS = ("float", "double", "long double")


def _syntax_only_args(entry) -> list[str]:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        import shlex
        args = shlex.split(entry.get("command", ""))
    out = []
    skip = False
    for a in args[1:]:  # drop the compiler itself
        if skip:
            skip = False
            continue
        if a in _STRIP_WITH_VALUE:
            skip = True
            continue
        if a in _STRIP:
            continue
        # GCC-only flags clang rejects; determinism flags are kept
        if a.startswith("-Wno-maybe-uninitialized"):
            continue
        out.append(a)
    return out


def dump_ast(clang_exe: str, entry, abspath: str) -> dict:
    cmd = ([clang_exe, "-fsyntax-only", "-Xclang", "-ast-dump=json", "-w"] +
           _syntax_only_args(entry))
    # the entry's file argument is already among the args; run from its dir
    proc = subprocess.run(cmd, cwd=entry.get("directory") or None,
                          capture_output=True, text=True, timeout=300)
    if proc.returncode != 0 or not proc.stdout.lstrip().startswith("{"):
        raise RuntimeError(
            f"clang ast-dump failed (rc={proc.returncode}): "
            f"{proc.stderr.strip().splitlines()[-1] if proc.stderr else ''}")
    return json.loads(proc.stdout)


class _Walker:
    """One pass over the JSON AST, building a TuModel for the main file."""

    _SCOPE_KINDS = {
        "FunctionDecl": "function",
        "CXXMethodDecl": "function",
        "CXXConstructorDecl": "function",
        "CXXDestructorDecl": "function",
        "LambdaExpr": "lambda",
        "ForStmt": "loop",
        "CXXForRangeStmt": "loop",
        "WhileStmt": "loop",
        "DoStmt": "loop",
        "IfStmt": "cond",
        "SwitchStmt": "cond",
        "NamespaceDecl": "namespace",
        "CXXRecordDecl": "class",
        "EnumDecl": "enum",
    }

    def __init__(self, path: str, main_file: str):
        self.model = TuModel(path)
        self.model.frontend = "clang"
        self.main_file = main_file
        self.cur_file = ""
        self.cur_line = 0
        self.next_scope_id = 1
        self.order = 0

    # -- location threading -------------------------------------------------

    def _update_loc(self, node) -> int:
        loc = node.get("loc") or {}
        if "spellingLoc" in loc:
            loc = loc["spellingLoc"]
        if "file" in loc:
            self.cur_file = loc["file"]
        if "line" in loc:
            self.cur_line = loc["line"]
        rng = node.get("range", {}).get("begin", {})
        if "spellingLoc" in rng:
            rng = rng["spellingLoc"]
        if "file" in rng:
            self.cur_file = rng["file"]
        if "line" in rng:
            self.cur_line = rng["line"]
        return self.cur_line

    def _in_main(self) -> bool:
        return (not self.cur_file or
                os.path.basename(self.cur_file) ==
                os.path.basename(self.main_file))

    # -- type helpers -------------------------------------------------------

    @staticmethod
    def _qual_type(node) -> str:
        t = node.get("type") or {}
        return t.get("desugaredQualType") or t.get("qualType") or ""

    @staticmethod
    def _canon(qt: str) -> str:
        qt = qt.replace("const ", "").replace("volatile ", "").strip()
        if qt.endswith("&") or qt.endswith("&&"):
            qt = qt.rstrip("&").strip()
        # `std::vector<double, std::allocator<double>>` -> std::vector<double>
        qt = qt.replace(", std::allocator<double>", "") \
               .replace(", std::allocator<float>", "") \
               .replace(", std::allocator<int>", "")
        return cpp_ast.canonical_type(qt)

    @classmethod
    def _is_float(cls, qt: str) -> bool:
        base = qt.replace("const", "").replace("&", "").strip()
        return base in _FLOAT_BUILTINS

    # -- tokens for messages ------------------------------------------------

    def _expr_tokens(self, node) -> list:
        """A short token stand-in for an operand (for finding messages)."""
        line = self.cur_line
        kind = node.get("kind", "")
        if kind in ("FloatingLiteral", "IntegerLiteral"):
            return [Token("num", str(node.get("value", "?")), line)]
        if kind == "DeclRefExpr":
            name = (node.get("referencedDecl") or {}).get("name", "?")
            return [Token("ident", name, line)]
        if kind == "MemberExpr":
            return [Token("ident", node.get("name", "?"), line)]
        for ch in node.get("inner") or []:
            if ch.get("kind"):
                return self._expr_tokens(ch)
        return [Token("ident", "<expr>", line)]

    # -- traversal ----------------------------------------------------------

    def walk(self, root) -> TuModel:
        self._visit(root, self.model.file_scope, None)
        return self.model

    def _new_scope(self, kind, name, parent, line):
        s = Scope(self.next_scope_id, kind, name, parent, line)
        self.next_scope_id += 1
        self.model.scopes.append(s)
        return s

    def _visit(self, node, scope: Scope, call_frame):
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        line = self._update_loc(node)
        in_main = self._in_main()

        skind = self._SCOPE_KINDS.get(kind)
        if skind is not None:
            name = node.get("name", "") or ("<lambda>" if skind == "lambda"
                                            else "")
            sc = self._new_scope(skind, name, scope, line)
            if skind == "function":
                qt = self._qual_type(node)  # e.g. "std::vector<double> (...)"
                ret = qt.split("(")[0].strip() if "(" in qt else ""
                parent_cls = scope if scope.kind == "class" else None
                if parent_cls is not None:
                    sc.class_name = parent_cls.name
                if name:
                    qname = name if not sc.class_name or "::" in name \
                        else f"{sc.class_name}::{name}"
                    self.model.functions[qname] = sc
                    if ret:
                        self.model.func_returns.setdefault(
                            name, self._canon(ret))
            if skind == "class" and name:
                self.model.classes.setdefault(name, sc)
            if skind == "lambda" and call_frame is not None:
                call_frame["lambdas"].append(sc)
            for ch in node.get("inner") or []:
                self._visit(ch, sc, None if skind == "lambda" else call_frame)
            return

        if kind == "VarDecl" and in_main:
            qt = self._canon(self._qual_type(node))
            is_ref = self._qual_type(node).rstrip().endswith("&")
            d = Decl(node.get("name", ""), qt, line, scope, is_ref=is_ref,
                     in_loop_header=False)
            storage = node.get("storageClass", "")
            if storage in ("static", "extern"):
                d.init = storage  # hot-loop rule skips static locals
            scope.decls[d.name] = d
            self.model.decls.append(d)

        if kind in ("CallExpr", "CXXMemberCallExpr") and in_main:
            callee, recv = self._callee_of(node)
            frame = {"lambdas": []}
            for ch in node.get("inner") or []:
                self._visit(ch, scope, frame)
            if callee:
                self.order += 1
                c = Call(callee, recv, [], line, scope, self.order)
                c.lambda_args = frame["lambdas"]
                self.model.calls.append(c)
            return

        if kind == "BinaryOperator" and in_main and \
                node.get("opcode") in ("==", "!="):
            inner = [ch for ch in (node.get("inner") or [])
                     if ch.get("kind")]
            if len(inner) == 2:
                lt = self._canon(self._strip_casts_type(inner[0]))
                rt = self._canon(self._strip_casts_type(inner[1]))
                c = Cmp(node["opcode"], line, scope,
                        self._expr_tokens(inner[0]),
                        self._expr_tokens(inner[1]))
                c.lhs_type = lt
                c.rhs_type = rt
                c.lhs_lit = self._strip_casts(inner[0]).get("kind") in \
                    ("FloatingLiteral", "IntegerLiteral")
                c.rhs_lit = self._strip_casts(inner[1]).get("kind") in \
                    ("FloatingLiteral", "IntegerLiteral")
                self.model.cmps.append(c)

        for ch in node.get("inner") or []:
            self._visit(ch, scope, call_frame)

    @staticmethod
    def _strip_casts(node):
        while node.get("kind") in ("ImplicitCastExpr", "ParenExpr",
                                   "ExprWithCleanups",
                                   "MaterializeTemporaryExpr"):
            inner = [ch for ch in (node.get("inner") or []) if ch.get("kind")]
            if not inner:
                break
            node = inner[0]
        return node

    def _strip_casts_type(self, node) -> str:
        return self._qual_type(self._strip_casts(node))

    def _callee_of(self, node):
        """(callee last-name, receiver text) of a call node."""
        inner = [ch for ch in (node.get("inner") or []) if ch.get("kind")]
        if not inner:
            return "", ""
        head = self._strip_casts(inner[0])
        if head.get("kind") == "MemberExpr":
            name = head.get("name", "")
            base = [ch for ch in (head.get("inner") or []) if ch.get("kind")]
            recv = ""
            if base:
                b = self._strip_casts(base[0])
                if b.get("kind") == "DeclRefExpr":
                    recv = (b.get("referencedDecl") or {}).get("name", "")
                    recv += "->" if "*" in self._qual_type(b) else "."
                elif b.get("kind") == "MemberExpr":
                    recv = b.get("name", "") + "."
                elif b.get("kind") == "CXXThisExpr":
                    recv = ""
            return name, recv
        if head.get("kind") == "DeclRefExpr":
            rd = head.get("referencedDecl") or {}
            name = rd.get("name", "")
            qual = head.get("foundReferences") or ""
            # namespace qualification: clang stores it on the DeclRefExpr's
            # nestedNameSpecifier in newer dumps; fall back to bare name
            return name, "std::" if "std" in str(qual) else ""
        return "", ""


def parse_tu(clang_exe: str, entry, root: str, relpath: str,
             base: TuModel | None = None) -> TuModel:
    """Parse `relpath` with clang and return a TuModel.

    When `base` (a builtin-frontend model of the same TU) is given, clang's
    compiler-accurate facts are overlaid onto it instead of replacing it:
    declaration types (resolved through real headers), typed comparisons,
    and return types. The base model keeps the call/argument detail the
    serialize-symmetry and rng-parallel checks depend on, so every check
    runs at full strength with clang-grade typing.
    """
    abspath = os.path.join(root, relpath)
    ast = dump_ast(clang_exe, entry, abspath)
    model = _Walker(relpath, abspath).walk(ast)
    with open(abspath, encoding="utf-8", errors="replace") as fh:
        model.tokens = cpp_ast.lex(fh.read())
    if base is None:
        return model
    # overlay: prefer clang types wherever both frontends saw the same decl
    by_key = {(d.name, d.line): d for d in model.decls}
    for d in base.decls:
        cd = by_key.get((d.name, d.line))
        if cd is not None and cd.type:
            d.type = cd.type
    for name, ret in model.func_returns.items():
        base.func_returns[name] = ret
    # typed comparisons: replace builtin cmps on lines clang also typed
    clang_lines = {c.line for c in model.cmps}
    base.cmps = [c for c in base.cmps if c.line not in clang_lines]
    base.cmps.extend(model.cmps)
    base.frontend = "clang"
    return base
