// scenario_ls: validate, canonicalize and expand scenario strings from the
// command line — the quickest way to answer "what exactly does this cell
// run?" before committing a grid to the fabric.
//
//   Usage: scenario_ls [-v|--verbose] PATTERN...
//
// Each PATTERN goes through scenario::expand (so `*` envs, comma
// alternations and `@lo..hi` seed ranges fan out) and every concrete
// scenario prints as its canonical string — the exact identity the
// experiment cache, the DAG scheduler and the serving API key on. With
// --verbose each line also shows the resolved threat model: base env,
// channel list with defaults applied, DR ranges and ε/budget.
//
// A malformed pattern prints the parser's pointed error on stderr and the
// exit status is 1 (after all patterns are processed), so shell scripts can
// use scenario_ls as a grid validator.

#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "scenario/spec.h"

int main(int argc, char** argv) {
  using imap::scenario::ScenarioSpec;
  bool verbose = false;
  std::vector<std::string> patterns;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-v" || arg == "--verbose") verbose = true;
    else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: scenario_ls [-v|--verbose] PATTERN...\n";
      return 0;
    } else patterns.push_back(arg);
  }
  if (patterns.empty()) {
    std::cerr << "scenario_ls: no patterns given (try --help)\n";
    return 1;
  }

  int failures = 0;
  for (const auto& pattern : patterns) {
    std::vector<ScenarioSpec> specs;
    try {
      specs = imap::scenario::expand(pattern);
    } catch (const imap::CheckError& e) {
      std::cerr << "scenario_ls: " << pattern << ": " << e.what() << "\n";
      ++failures;
      continue;
    }
    for (const auto& spec : specs) {
      std::cout << spec.canonical();
      if (verbose) {
        std::cout << "\n  env: " << spec.env
                  << "\n  epsilon: "
                  << imap::scenario::format_number(spec.epsilon())
                  << "\n  budget: "
                  << (spec.budget() > 0.0
                          ? imap::scenario::format_number(spec.budget())
                          : std::string("unbounded"));
        for (const auto& c : spec.channels)
          std::cout << "\n  channel: " << imap::scenario::to_string(c.kind)
                    << " = " << imap::scenario::format_number(c.param);
        for (const auto& r : spec.dr)
          std::cout << "\n  dr: " << r.key << " in ["
                    << imap::scenario::format_number(r.lo) << ", "
                    << imap::scenario::format_number(r.hi) << "]";
        if (spec.has_seed) std::cout << "\n  seed: " << spec.seed;
        std::cout << "\n";
      }
      std::cout << "\n";
    }
  }
  return failures > 0 ? 1 : 0;
}
