#!/usr/bin/env bash
# run_sanitizers.sh — drive the sanitizer tiers over tier-1 ctest via the
# CMakePresets (asan, ubsan, tsan). Each tier configures + builds its own
# binary dir and runs with the matching per-sanitizer suppression file from
# tools/sanitizers/.
#
#   ASan  : full tier-1 suite (heap/stack corruption, leaks).
#   UBSan : full tier-1 suite (signed overflow, bad shifts, misaligned loads).
#   TSan  : thread-pool and parallel-determinism suites — the paths PR 1 made
#           concurrent; the full suite under TSan is ~20x and adds nothing.
#
# Usage: tools/run_sanitizers.sh [asan|ubsan|tsan ...]   (default: all three)
set -u

cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"
SUPP_DIR="${REPO_ROOT}/tools/sanitizers"
JOBS="${IMAP_SAN_JOBS:-$(nproc)}"

tiers=("$@")
[ ${#tiers[@]} -eq 0 ] && tiers=(asan ubsan tsan)

failures=0

run_tier() {
  local tier="$1"
  local env_assignments=()
  case "$tier" in
    asan)
      env_assignments=(
        "ASAN_OPTIONS=detect_leaks=1:abort_on_error=1:suppressions=${SUPP_DIR}/asan.supp"
        "LSAN_OPTIONS=suppressions=${SUPP_DIR}/lsan.supp"
      ) ;;
    ubsan)
      env_assignments=(
        "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1:suppressions=${SUPP_DIR}/ubsan.supp"
      ) ;;
    tsan)
      env_assignments=(
        "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1:suppressions=${SUPP_DIR}/tsan.supp"
      ) ;;
    *)
      echo "run_sanitizers: unknown tier '$tier' (want asan|ubsan|tsan)" >&2
      return 2 ;;
  esac

  echo "=== [$tier] configure ==="
  cmake --preset "$tier" || return 1
  echo "=== [$tier] build ==="
  cmake --build --preset "$tier" -j "$JOBS" || return 1
  echo "=== [$tier] ctest ==="
  env "${env_assignments[@]}" ctest --preset "$tier" -j "$JOBS" || return 1
}

for tier in "${tiers[@]}"; do
  if run_tier "$tier"; then
    echo "=== [$tier] OK ==="
  else
    echo "=== [$tier] FAILED ===" >&2
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "run_sanitizers: ${failures} tier(s) failed" >&2
  exit 1
fi
echo "run_sanitizers: all tiers clean"
