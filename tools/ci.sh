#!/usr/bin/env bash
# ci.sh — the one-shot correctness gate: build -> lint -> tier-1 ctest ->
# bench smoke. Exits nonzero on the first failing stage. Also exposed as the
# `ci` CMake target (`cmake --build build --target ci`).
#
# Environment:
#   IMAP_CI_BUILD_DIR  build directory (default: build)
#   IMAP_CI_WERROR     ON/OFF, build with -Werror hardening (default: ON)
#   IMAP_CI_JOBS       parallel build/test jobs (default: nproc)
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${IMAP_CI_BUILD_DIR:-build}"
WERROR="${IMAP_CI_WERROR:-ON}"
JOBS="${IMAP_CI_JOBS:-$(nproc)}"

stage() { echo; echo "=== ci: $* ==="; }

stage "configure (${BUILD_DIR}, IMAP_WERROR=${WERROR})"
cmake -B "${BUILD_DIR}" -S . -DIMAP_WERROR="${WERROR}" || exit 1

stage "build"
cmake --build "${BUILD_DIR}" -j "${JOBS}" || exit 1

stage "lint"
python3 tools/lint/imap_lint.py --root . src bench tests || exit 1
python3 tools/lint/test_imap_lint.py || exit 1

stage "check.ast (semantic determinism analyzer + build-flag contract)"
# Hard-fails (exit 2) when compile_commands.json is missing or stale — the
# kernel-flags contract is checked against what the build actually does.
python3 tools/check/imap_check.py --root . \
  --compdb "${BUILD_DIR}/compile_commands.json" || exit 1
python3 tools/check/test_imap_check.py || exit 1

stage "tier-1 ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" || exit 1

stage "checkpoint/resume (cross-process halt -> inspect -> resume)"
# End-to-end drill of the Archive snapshot layer through real process
# boundaries: process 1 halts every attack cell after one PPO iteration
# (leaving resumable .snap files), ckpt_inspect must verify every artifact,
# process 2 resumes the snapshots to completion and caches results.
CKPT_ZOO="$(pwd)/${BUILD_DIR}/ci_ckpt_zoo"
rm -rf "${CKPT_ZOO}"
( cd "${BUILD_DIR}" &&
  IMAP_ZOO_DIR="${CKPT_ZOO}" IMAP_BENCH_SCALE=0.01 IMAP_SNAPSHOT_EVERY=1 \
  IMAP_HALT_AFTER_ITERS=1 ./bench/bench_fig6 > /dev/null ) || exit 1
ls "${CKPT_ZOO}"/snapshots/*.snap > /dev/null 2>&1 \
  || { echo "ci: halted run left no snapshots"; exit 1; }
"${BUILD_DIR}/tools/ckpt_inspect" "${CKPT_ZOO}"/snapshots/*.snap \
  "${CKPT_ZOO}"/*.pol || exit 1
( cd "${BUILD_DIR}" &&
  IMAP_ZOO_DIR="${CKPT_ZOO}" IMAP_BENCH_SCALE=0.01 IMAP_SNAPSHOT_EVERY=1 \
  ./bench/bench_fig6 > /dev/null ) || exit 1
ls "${CKPT_ZOO}"/snapshots/*.snap > /dev/null 2>&1 \
  && { echo "ci: completed run left stale snapshots"; exit 1; }
ls "${CKPT_ZOO}"/results/*.res > /dev/null 2>&1 \
  || { echo "ci: completed run cached no results"; exit 1; }
rm -rf "${CKPT_ZOO}"

stage "fabric (2-process DAG grid + worker-crash drill vs serial run)"
# End-to-end drill of the multi-process fabric: a 3-cell victim->attack->eval
# grid scheduled over 2 worker processes, with the first attack cell's worker
# killed mid-run (SIGKILL-equivalent _exit without replying). The scheduler
# must detect the death, re-dispatch the cell, resume it from its snapshot,
# and the merged results must be bit-identical to a fresh serial run.
FABRIC_ZOO="$(pwd)/${BUILD_DIR}/ci_fabric_zoo"
rm -rf "${FABRIC_ZOO}" "${FABRIC_ZOO}_serial"
IMAP_BENCH_SCALE=0.001 "${BUILD_DIR}/tools/fabric_grid" \
  --procs 2 --crash-nth 1 --compare \
  --zoo "${FABRIC_ZOO}" --serial-zoo "${FABRIC_ZOO}_serial" || exit 1
rm -rf "${FABRIC_ZOO}" "${FABRIC_ZOO}_serial"

stage "bench-smoke (kernel suites, min_time=0.01s, probes skipped)"
# Exercises the batched-kernel benchmarks end to end without the slow
# speedup/kernel probes (those rewrite BENCH_*.json and are run manually —
# see README "Benchmarks"). min_time is a plain double: the bundled
# google-benchmark predates the "0.01s" suffix syntax.
IMAP_BENCH_NO_PROBE=1 "${BUILD_DIR}/bench/bench_micro_ppo" \
  --benchmark_min_time=0.01 \
  --benchmark_filter='BM_MlpForwardBatch|BM_PpoUpdate|BM_RolloutCollect' || exit 1
IMAP_BENCH_NO_PROBE=1 "${BUILD_DIR}/bench/bench_micro_infer" \
  --benchmark_min_time=0.01 \
  --benchmark_filter='BM_VictimQueryBatch' || exit 1
# Fabric scaling probe at smoke scale: runs the 1-vs-N process collect and
# grid probes, asserting trace identity. Runs from the build dir so the
# tracked repo-root BENCH_fabric.json (regenerated manually at full scale,
# see README "Benchmarks") is not clobbered by smoke-scale numbers.
( cd "${BUILD_DIR}" && IMAP_BENCH_SCALE=0.001 ./bench/bench_fabric ) || exit 1

stage "OK — build, lint, tier-1 tests, and bench smoke all clean"
