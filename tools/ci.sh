#!/usr/bin/env bash
# ci.sh — the one-shot correctness gate: build -> lint -> tier-1 ctest ->
# bench smoke. Exits nonzero on the first failing stage. Also exposed as the
# `ci` CMake target (`cmake --build build --target ci`).
#
# Environment:
#   IMAP_CI_BUILD_DIR  build directory (default: build)
#   IMAP_CI_WERROR     ON/OFF, build with -Werror hardening (default: ON)
#   IMAP_CI_JOBS       parallel build/test jobs (default: nproc)
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${IMAP_CI_BUILD_DIR:-build}"
WERROR="${IMAP_CI_WERROR:-ON}"
JOBS="${IMAP_CI_JOBS:-$(nproc)}"

stage() { echo; echo "=== ci: $* ==="; }

stage "configure (${BUILD_DIR}, IMAP_WERROR=${WERROR})"
cmake -B "${BUILD_DIR}" -S . -DIMAP_WERROR="${WERROR}" || exit 1

stage "build"
cmake --build "${BUILD_DIR}" -j "${JOBS}" || exit 1

stage "lint"
python3 tools/lint/imap_lint.py --root . src bench tests || exit 1
python3 tools/lint/test_imap_lint.py || exit 1

stage "check.ast (semantic determinism analyzer + build-flag contract)"
# Hard-fails (exit 2) when compile_commands.json is missing or stale — the
# kernel-flags contract is checked against what the build actually does.
python3 tools/check/imap_check.py --root . \
  --compdb "${BUILD_DIR}/compile_commands.json" || exit 1
python3 tools/check/test_imap_check.py || exit 1

stage "tier-1 ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" || exit 1

stage "checkpoint/resume (cross-process halt -> inspect -> resume)"
# End-to-end drill of the Archive snapshot layer through real process
# boundaries: process 1 halts every attack cell after one PPO iteration
# (leaving resumable .snap files), ckpt_inspect must verify every artifact,
# process 2 resumes the snapshots to completion and caches results.
CKPT_ZOO="$(pwd)/${BUILD_DIR}/ci_ckpt_zoo"
rm -rf "${CKPT_ZOO}"
( cd "${BUILD_DIR}" &&
  IMAP_ZOO_DIR="${CKPT_ZOO}" IMAP_BENCH_SCALE=0.01 IMAP_SNAPSHOT_EVERY=1 \
  IMAP_HALT_AFTER_ITERS=1 ./bench/bench_fig6 > /dev/null ) || exit 1
ls "${CKPT_ZOO}"/snapshots/*.snap > /dev/null 2>&1 \
  || { echo "ci: halted run left no snapshots"; exit 1; }
"${BUILD_DIR}/tools/ckpt_inspect" "${CKPT_ZOO}"/snapshots/*.snap \
  "${CKPT_ZOO}"/*.pol || exit 1
( cd "${BUILD_DIR}" &&
  IMAP_ZOO_DIR="${CKPT_ZOO}" IMAP_BENCH_SCALE=0.01 IMAP_SNAPSHOT_EVERY=1 \
  ./bench/bench_fig6 > /dev/null ) || exit 1
ls "${CKPT_ZOO}"/snapshots/*.snap > /dev/null 2>&1 \
  && { echo "ci: completed run left stale snapshots"; exit 1; }
ls "${CKPT_ZOO}"/results/*.res > /dev/null 2>&1 \
  || { echo "ci: completed run cached no results"; exit 1; }
rm -rf "${CKPT_ZOO}"

stage "fabric (2-process DAG grid + crash drill + randomized scenario cell)"
# End-to-end drill of the multi-process fabric: a 4-cell victim->attack->eval
# grid scheduled over 2 worker processes, with the first attack cell's worker
# killed mid-run (SIGKILL-equivalent _exit without replying). The scheduler
# must detect the death, re-dispatch the cell, resume it from its snapshot,
# and the merged results must be bit-identical to a fresh serial run. The
# fourth cell is a randomized SCENARIO (channel pipeline + seeded DR drawn
# per reset from the slot Rng) — the bit-compare proves procedural
# randomization is factorization-invariant across the process fabric too.
CI_SCENARIO='hopper+obs_perturb:0.075+obs_delay:1+dr[mass:0.9..1.1]@7'
"${BUILD_DIR}/tools/scenario_ls" "${CI_SCENARIO}" \
  || { echo "ci: scenario string failed validation"; exit 1; }
FABRIC_ZOO="$(pwd)/${BUILD_DIR}/ci_fabric_zoo"
rm -rf "${FABRIC_ZOO}" "${FABRIC_ZOO}_serial"
IMAP_BENCH_SCALE=0.001 "${BUILD_DIR}/tools/fabric_grid" \
  --procs 2 --crash-nth 1 --compare --scenario "${CI_SCENARIO}" \
  --zoo "${FABRIC_ZOO}" --serial-zoo "${FABRIC_ZOO}_serial" || exit 1
rm -rf "${FABRIC_ZOO}" "${FABRIC_ZOO}_serial"

stage "bench-smoke (kernel suites, min_time=0.01s, probes skipped)"
# Exercises the batched-kernel benchmarks end to end without the slow
# speedup/kernel probes (those rewrite BENCH_*.json and are run manually —
# see README "Benchmarks"). min_time is a plain double: the bundled
# google-benchmark predates the "0.01s" suffix syntax.
IMAP_BENCH_NO_PROBE=1 "${BUILD_DIR}/bench/bench_micro_ppo" \
  --benchmark_min_time=0.01 \
  --benchmark_filter='BM_MlpForwardBatch|BM_PpoUpdate|BM_RolloutCollect' || exit 1
IMAP_BENCH_NO_PROBE=1 "${BUILD_DIR}/bench/bench_micro_infer" \
  --benchmark_min_time=0.01 \
  --benchmark_filter='BM_VictimQueryBatch' || exit 1
# Fabric scaling probe at smoke scale: runs the 1-vs-N process collect and
# grid probes, asserting trace identity. Runs from the build dir so the
# tracked repo-root BENCH_fabric.json (regenerated manually at full scale,
# see README "Benchmarks") is not clobbered by smoke-scale numbers.
( cd "${BUILD_DIR}" && IMAP_BENCH_SCALE=0.001 ./bench/bench_fabric ) || exit 1
# Serving-coalescer probe at smoke scale: every cell still runs (including
# the bit-identity comparison against direct PolicyHandle queries — the
# probe exits nonzero on any mismatch), just with tiny iteration counts.
# From the build dir so the tracked BENCH_serve.json stays full-scale.
( cd "${BUILD_DIR}" &&
  IMAP_BENCH_SERVE_ITERS=2 IMAP_BENCH_SERVE_REPS=1 ./bench/bench_serve \
  > /dev/null ) || exit 1

stage "bench-diff (rollout steps/s gate vs tracked BENCH_rollout.json)"
# Regenerate the rollout-collection probe in the build dir (min-of-7
# collects, serial vs vectorized, bit-identity asserted) and gate it against
# the tracked baseline: a >10% steps/s regression fails the stage. One warm
# retry absorbs cold-start noise (page cache, CPU frequency ramp); a real
# regression fails both runs.
run_rollout_probe() {
  ( cd "${BUILD_DIR}" &&
    IMAP_BENCH_ROLLOUT_PROBE_ONLY=1 ./bench/bench_micro_ppo > /dev/null )
}
run_rollout_probe || exit 1
if ! python3 tools/bench_diff.py BENCH_rollout.json \
       "${BUILD_DIR}/BENCH_rollout.json"; then
  echo "ci: rollout probe below baseline; retrying once (cold-start noise)"
  run_rollout_probe || exit 1
  python3 tools/bench_diff.py BENCH_rollout.json \
    "${BUILD_DIR}/BENCH_rollout.json" || exit 1
fi

stage "serve (daemon lifecycle: start, concurrent smoke, clean shutdown)"
# End-to-end drill of the imap_serve daemon as a real process: ephemeral
# port, resident victim trained at smoke scale on first /infer, concurrent
# curl clients, Prometheus scrape, then SIGTERM and a clean exit.
SERVE_ZOO="$(pwd)/${BUILD_DIR}/ci_serve_zoo"
SERVE_LOG="$(pwd)/${BUILD_DIR}/ci_serve_port"
rm -rf "${SERVE_ZOO}" "${SERVE_LOG}"
IMAP_ZOO_DIR="${SERVE_ZOO}" IMAP_BENCH_SCALE=0.01 IMAP_SERVE_PORT=0 \
  "${BUILD_DIR}/tools/imap_serve" --print-port > "${SERVE_LOG}" &
SERVE_PID=$!
for _ in $(seq 1 50); do
  [ -s "${SERVE_LOG}" ] && break
  sleep 0.1
done
SERVE_PORT="$(head -n1 "${SERVE_LOG}")"
[ -n "${SERVE_PORT}" ] || { echo "ci: imap_serve printed no port"; exit 1; }
curl -fsS "http://127.0.0.1:${SERVE_PORT}/health" | grep -q '"status":"ok"' \
  || { echo "ci: /health failed"; kill "${SERVE_PID}"; exit 1; }
# Concurrent inference smoke: identical observations must produce identical
# action rows whether or not they shared a coalesced batch.
SERVE_OBS="$(python3 -c 'print(" ".join(["0.01"] * 11))')"
for i in 1 2 3 4; do
  curl -fsS -d "${SERVE_OBS}" \
    "http://127.0.0.1:${SERVE_PORT}/infer?env=Hopper" \
    > "${SERVE_LOG}.${i}" &
done
wait $(jobs -p | grep -v "^${SERVE_PID}$") 2>/dev/null
for i in 2 3 4; do
  cmp -s "${SERVE_LOG}.1" "${SERVE_LOG}.${i}" \
    || { echo "ci: concurrent /infer rows diverged"; kill "${SERVE_PID}"; exit 1; }
done
[ -s "${SERVE_LOG}.1" ] || { echo "ci: /infer empty"; kill "${SERVE_PID}"; exit 1; }
curl -fsS "http://127.0.0.1:${SERVE_PORT}/metrics" \
  | grep -q '^imap_serve_infer_requests_total 4$' \
  || { echo "ci: /metrics did not count 4 infers"; kill "${SERVE_PID}"; exit 1; }
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}"
SERVE_RC=$?
[ "${SERVE_RC}" -eq 0 ] || { echo "ci: imap_serve exit ${SERVE_RC}"; exit 1; }
rm -rf "${SERVE_ZOO}" "${SERVE_LOG}" "${SERVE_LOG}".[1-4]

stage "OK — build, lint, tier-1 tests, bench smoke, and serve drill all clean"
