#!/usr/bin/env bash
# ci.sh — the one-shot correctness gate: build -> lint -> tier-1 ctest.
# Exits nonzero on the first failing stage. Also exposed as the `ci` CMake
# target (`cmake --build build --target ci`).
#
# Environment:
#   IMAP_CI_BUILD_DIR  build directory (default: build)
#   IMAP_CI_WERROR     ON/OFF, build with -Werror hardening (default: ON)
#   IMAP_CI_JOBS       parallel build/test jobs (default: nproc)
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${IMAP_CI_BUILD_DIR:-build}"
WERROR="${IMAP_CI_WERROR:-ON}"
JOBS="${IMAP_CI_JOBS:-$(nproc)}"

stage() { echo; echo "=== ci: $* ==="; }

stage "configure (${BUILD_DIR}, IMAP_WERROR=${WERROR})"
cmake -B "${BUILD_DIR}" -S . -DIMAP_WERROR="${WERROR}" || exit 1

stage "build"
cmake --build "${BUILD_DIR}" -j "${JOBS}" || exit 1

stage "lint"
python3 tools/lint/imap_lint.py --root . src bench tests || exit 1
python3 tools/lint/test_imap_lint.py || exit 1

stage "tier-1 ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" || exit 1

stage "OK — build, lint, and tier-1 tests all clean"
