// Figure-2 scenario: learn an adversarial blocker for YouShallNotPass with
// AP-MARL (baseline) and IMAP-PC+BR, report both ASR curves, and dump one
// episode's (runner, blocker) positions so the learned blocking behaviour
// can be inspected.

#include <fstream>
#include <iostream>

#include "attack/ap_marl.h"
#include "attack/threat_model.h"
#include "common/config.h"
#include "core/imap_trainer.h"
#include "core/zoo.h"
#include "env/registry.h"
#include "env/you_shall_not_pass.h"

using namespace imap;

namespace {

void dump_episode(const std::string& path, const env::MultiAgentEnv& proto,
                  const rl::ActionFn& victim, const rl::ActionFn& adversary) {
  auto game = proto.clone();
  Rng rng(202);
  auto [obs_v, obs_a] = game->reset(rng);
  std::ofstream f(path);
  f << "t,runner_x,runner_y,blocker_x,blocker_y\n";
  for (int t = 0; t < 150; ++t) {
    // Joint-state layout of the adversary obs: runner pos (0,1)·scale,
    // blocker pos (4,5)·scale.
    f << t << ',' << obs_a[0] * 5.0 << ',' << obs_a[1] * 3.0 << ','
      << obs_a[4] * 5.0 << ',' << obs_a[5] * 3.0 << '\n';
    const auto ma = game->step(
        proto.victim_action_space().clamp(victim(obs_v)),
        proto.adversary_action_space().clamp(adversary(obs_a)));
    obs_v = ma.obs_v;
    obs_a = ma.obs_a;
    if (ma.done || ma.truncated) break;
  }
  std::cout << "  episode dumped to " << path << "\n";
}

}  // namespace

int main() {
  const auto cfg = BenchConfig::from_env();
  core::Zoo zoo(cfg.zoo_dir, cfg.scale, cfg.seed);
  const auto game = env::make_multiagent_env("YouShallNotPass");

  std::cout << "Training (or loading) the runner victim...\n";
  const auto victim_policy = zoo.game_victim("YouShallNotPass");
  const auto victim = core::Zoo::as_fn(victim_policy);

  Rng rng(cfg.seed);
  Rng eval_rng(17);
  const long long steps =
      std::max<long long>(8192, static_cast<long long>(120'000 * cfg.scale));
  const int episodes = 100;

  std::cout << "Training AP-MARL blocker (baseline, dithering "
               "exploration)...\n";
  attack::ApMarl ap_marl(*game, victim, {}, rng.split(1));
  ap_marl.train(steps);
  const auto ap_eval = attack::evaluate_opponent_attack(
      *game, victim, ap_marl.adversary(), episodes, eval_rng);
  std::cout << "AP-MARL ASR:    " << 100.0 * (1.0 - ap_eval.success_rate)
            << "%\n";
  dump_episode("episode_ap_marl.csv", *game, victim, ap_marl.adversary());

  std::cout << "Training IMAP-PC+BR blocker (coverage-driven "
               "exploration)...\n";
  core::ImapOptions opts;
  opts.reg.type = core::RegularizerType::PC;
  opts.bias_reduction = true;
  core::ImapTrainer imap(*game, victim, opts, rng.split(2));
  imap.train(steps);
  const auto imap_eval = attack::evaluate_opponent_attack(
      *game, victim, imap.adversary(), episodes, eval_rng);
  std::cout << "IMAP-PC+BR ASR: " << 100.0 * (1.0 - imap_eval.success_rate)
            << "%\n";
  dump_episode("episode_imap.csv", *game, victim, imap.adversary());

  std::cout << "\n(paper Fig. 2 / Sec. 6.3.3: AP-MARL's blocker degenerates "
               "while IMAP-PC learns genuine interception — compare the "
               "blocker tracks in the two CSVs)\n";
  return 0;
}
