// Figure-1 scenario: attack a WocaR-hardened Walker2d victim and dump the
// posture trajectory under SA-RL vs IMAP-PC so the fall dynamics can be
// inspected (the paper's rendered frames become a CSV time series here).
//
// Usage: ./attack_robust_victim [env] [defense]
//   env ∈ {Hopper, Walker2d, HalfCheetah, Ant}, defense ∈ Table 1 rows.

#include <fstream>
#include <iostream>

#include "attack/random_attack.h"
#include "attack/sa_rl.h"
#include "attack/threat_model.h"
#include "common/config.h"
#include "core/imap_trainer.h"
#include "core/zoo.h"
#include "env/registry.h"
#include "rl/evaluate.h"

using namespace imap;

namespace {

void dump_trajectory(const std::string& path, const rl::Env& deploy_env,
                     const rl::ActionFn& victim, const rl::ActionFn& attack,
                     double eps) {
  attack::StatePerturbationEnv env(deploy_env, victim, eps,
                                   attack::RewardMode::VictimTrue);
  Rng rng(101);
  const auto traj = rl::rollout_trajectory(env, attack, rng);
  std::ofstream f(path);
  f << "t,theta,omega,v\n";
  for (std::size_t t = 0; t < traj.size(); ++t)
    f << t << ',' << traj[t][0] << ',' << traj[t][1] << ',' << traj[t][2]
      << '\n';
  std::cout << "  trajectory written to " << path << " (" << traj.size() - 1
            << " steps — a fall shows as |theta| hitting the limit early)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string env_name = argc > 1 ? argv[1] : "Walker2d";
  const std::string defense = argc > 2 ? argv[2] : "WocaR";
  const auto cfg = BenchConfig::from_env();

  core::Zoo zoo(cfg.zoo_dir, cfg.scale, cfg.seed);
  const auto deploy_env = env::make_env(env_name);
  const double eps = env::spec(env_name).epsilon;

  std::cout << "Training (or loading) the " << defense << " victim on "
            << env_name << "...\n";
  const auto victim_policy = zoo.victim(env_name, defense);
  const auto victim = core::Zoo::as_fn(victim_policy);

  Rng rng(cfg.seed);
  Rng eval_rng(17);
  const int episodes = 40;
  const auto clean = attack::evaluate_attack(
      *deploy_env, victim, attack::make_null_attack(deploy_env->obs_dim()),
      eps, episodes, eval_rng);
  std::cout << "No attack:  " << clean.returns.mean << " +/- "
            << clean.returns.stddev << "\n";

  const long long steps =
      std::max<long long>(8192, static_cast<long long>(120'000 * cfg.scale));

  std::cout << "Training SA-RL (baseline)...\n";
  attack::SaRl sa_rl(*deploy_env, victim, eps, {}, rng.split(1));
  sa_rl.train(steps);
  const auto sa_eval = attack::evaluate_attack(
      *deploy_env, victim, sa_rl.adversary(), eps, episodes, eval_rng);
  std::cout << "SA-RL:      " << sa_eval.returns.mean << " +/- "
            << sa_eval.returns.stddev << "\n";
  dump_trajectory("traj_sa_rl.csv", *deploy_env, victim, sa_rl.adversary(),
                  eps);

  std::cout << "Training IMAP-PC+BR (this paper)...\n";
  core::ImapOptions opts;
  opts.reg.type = core::RegularizerType::PC;
  opts.bias_reduction = true;
  opts.surrogate_scale = deploy_env->max_steps();
  core::ImapTrainer imap(*deploy_env, victim, eps, opts, rng.split(2));
  imap.train(steps);
  const auto imap_eval = attack::evaluate_attack(
      *deploy_env, victim, imap.adversary(), eps, episodes, eval_rng);
  std::cout << "IMAP-PC+BR: " << imap_eval.returns.mean << " +/- "
            << imap_eval.returns.stddev << "\n";
  dump_trajectory("traj_imap.csv", *deploy_env, victim, imap.adversary(),
                  eps);

  std::cout << "\nVictim drop: SA-RL "
            << 100.0 * (1.0 - sa_eval.returns.mean / clean.returns.mean)
            << "% vs IMAP "
            << 100.0 * (1.0 - imap_eval.returns.mean / clean.returns.mean)
            << "% (paper Fig. 1: IMAP finds falls that SA-RL misses on "
               "robust victims)\n";
  return 0;
}
