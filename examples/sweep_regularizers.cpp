// The paper's recommended evaluation workflow (Sec. 6.3.1, "Choice of
// Adversarial Intrinsic Regularizers"): to audit a black-box victim, start
// with IMAP-PC, then try all four regularizers — different victims are
// vulnerable to different exploration drives. This example runs the full
// sweep on one sparse task and prints the resulting robustness report.

#include <iostream>

#include "common/config.h"
#include "common/table.h"
#include "core/experiment.h"

using namespace imap;
using core::AttackKind;

int main(int argc, char** argv) {
  const std::string env_name = argc > 1 ? argv[1] : "SparseHopper";
  auto cfg = BenchConfig::from_env();
  core::ExperimentRunner runner(cfg);

  Table report({"Attack", "Victim reward", "Victim success", "Verdict"});

  core::AttackPlan base;
  base.env_name = env_name;

  auto clean = [&] {
    core::AttackPlan p = base;
    p.attack = AttackKind::None;
    return runner.run(p);
  }();
  report.add_row({"(no attack)",
                  Table::pm(clean.victim_eval.returns.mean,
                            clean.victim_eval.returns.stddev, 2),
                  Table::num(100 * clean.victim_eval.success_rate, 1) + "%",
                  "baseline"});

  double best = clean.victim_eval.returns.mean;
  std::string best_attack = "none";
  for (const auto attack : core::imap_attacks()) {
    core::AttackPlan p = base;
    p.attack = attack;
    p.bias_reduction = true;  // the paper's strongest configuration
    std::cout << "Running " << core::to_string(attack) << "+BR on "
              << env_name << "...\n";
    const auto out = runner.run(p);
    // Guard against near-zero baselines (e.g. an untrained smoke-run
    // victim) where a percentage drop is meaningless.
    const bool baseline_ok = clean.victim_eval.returns.mean > 0.05;
    const double drop =
        100.0 * (1.0 - out.victim_eval.returns.mean /
                           clean.victim_eval.returns.mean);
    report.add_row({core::to_string(attack) + "+BR",
                    Table::pm(out.victim_eval.returns.mean,
                              out.victim_eval.returns.stddev, 2),
                    Table::num(100 * out.victim_eval.success_rate, 1) + "%",
                    baseline_ok ? Table::num(drop, 1) + "% drop" : "n/a"});
    if (out.victim_eval.returns.mean < best) {
      best = out.victim_eval.returns.mean;
      best_attack = core::to_string(attack);
    }
  }

  std::cout << "\nRobustness report for the deployed " << env_name
            << " victim:\n\n"
            << report.to_string() << "\n";
  std::cout << "Most effective regularizer: " << best_attack
            << " — per the paper, report robustness against the WORST of "
               "the four, not the average.\n";
  return 0;
}
