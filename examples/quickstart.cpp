// Quickstart: train a PPO victim on Hopper, then learn an IMAP-PC black-box
// adversarial policy against it and compare the victim's performance with
// and without the attack.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [victim_steps] [attack_steps]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "attack/random_attack.h"
#include "attack/threat_model.h"
#include "core/imap_trainer.h"
#include "core/zoo.h"
#include "defense/victim_trainer.h"
#include "env/registry.h"
#include "rl/evaluate.h"

using namespace imap;

int main(int argc, char** argv) {
  const long long victim_steps = argc > 1 ? std::atoll(argv[1]) : 150'000;
  const long long attack_steps = argc > 2 ? std::atoll(argv[2]) : 60'000;
  Rng rng(7);

  // 1. Train the victim with vanilla PPO on its own (dense) task reward.
  const auto env = env::make_env("Hopper");
  std::cout << "[1/3] training PPO victim on " << env->name() << " ("
            << victim_steps << " steps)...\n";
  auto victim_policy = defense::train_victim(
      *env, defense::DefenseKind::Vanilla, victim_steps, {}, rng.split(1));
  const auto victim = core::Zoo::as_fn(victim_policy);

  const double eps = env::spec("Hopper").epsilon;
  Rng eval_rng(17);
  const auto clean = attack::evaluate_attack(
      *env, victim, attack::make_null_attack(env->obs_dim()), eps, 50,
      eval_rng);
  std::cout << "      victim reward (no attack):  " << clean.returns.mean
            << " +/- " << clean.returns.stddev << "\n";

  // 2. Learn the IMAP-PC adversarial policy — black box: it sees only the
  //    environment state and the success indicator, never the victim's
  //    rewards, values or parameters.
  std::cout << "[2/3] training IMAP-PC adversary (eps=" << eps << ", "
            << attack_steps << " steps)...\n";
  core::ImapOptions opts;
  opts.reg.type = core::RegularizerType::PC;
  opts.bias_reduction = true;
  opts.surrogate_scale = env->max_steps();
  core::ImapTrainer attacker(*env, victim, eps, opts, rng.split(2));
  attacker.train(attack_steps);

  // 3. Evaluate the victim under attack.
  std::cout << "[3/3] evaluating the attack...\n";
  const auto attacked = attack::evaluate_attack(
      *env, victim, attacker.adversary(), eps, 50, eval_rng);
  std::cout << "      victim reward (IMAP-PC):    " << attacked.returns.mean
            << " +/- " << attacked.returns.stddev << "\n";
  std::cout << "      performance drop:           "
            << 100.0 * (1.0 - attacked.returns.mean /
                                  std::max(1.0, clean.returns.mean))
            << "%\n";
  return 0;
}
