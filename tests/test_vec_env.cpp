// The determinism contract of the vectorized rollout engine: the lockstep
// batched collection (one policy/value/victim forward per tick) fills
// buffers bit-identical to E independent serial collections, for any E, any
// thread count and any (workers × slots) factorization of the total.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "attack/threat_model.h"
#include "common/thread_pool.h"
#include "env/registry.h"
#include "nn/gaussian.h"
#include "rl/normalizer.h"
#include "rl/ppo.h"
#include "rl/vec_env.h"

namespace imap {
namespace {

std::vector<Rng> make_streams(std::size_t e, std::uint64_t seed) {
  Rng base(seed);
  std::vector<Rng> streams;
  for (std::size_t i = 0; i < e; ++i)
    streams.push_back(base.split(0x100 + static_cast<std::uint64_t>(i)));
  return streams;
}

void expect_buffers_identical(const rl::RolloutBuffer& a,
                              const rl::RolloutBuffer& b) {
  ASSERT_EQ(a.size(), b.size());
  // obs/act may hold spare rows past size(); only the valid prefix counts.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.obs[i], b.obs[i]) << "obs row " << i;
    EXPECT_EQ(a.act[i], b.act[i]) << "act row " << i;
  }
  EXPECT_EQ(a.logp, b.logp);
  EXPECT_EQ(a.rew_e, b.rew_e);
  EXPECT_EQ(a.val_e, b.val_e);
  EXPECT_EQ(a.done, b.done);
  EXPECT_EQ(a.boundary, b.boundary);
  EXPECT_EQ(a.last_val_e, b.last_val_e);
  EXPECT_EQ(a.last_val_i, b.last_val_i);
  EXPECT_EQ(a.episode_returns, b.episode_returns);
  EXPECT_EQ(a.episode_surrogate, b.episode_surrogate);
  EXPECT_EQ(a.episode_lengths, b.episode_lengths);
}

/// Run collect() and collect_serial() on identically-seeded twin engines over
/// `proto` and require every slot's buffer to match bitwise.
void expect_vectorized_matches_serial(const rl::Env& proto, std::size_t e,
                                      int steps_per_slot) {
  Rng net_rng(17);
  nn::GaussianPolicy policy(proto.obs_dim(), proto.act_dim(), {16, 16},
                            net_rng);
  nn::ValueNet value_e(proto.obs_dim(), {16, 16}, net_rng);
  nn::ValueNet value_i(proto.obs_dim(), {16, 16}, net_rng);

  rl::VecEnv vec, ref;
  vec.configure(proto, make_streams(e, 23));
  ref.configure(proto, make_streams(e, 23));

  const std::vector<int> budgets(e, steps_per_slot);
  // Two rounds: the second starts from persisted mid-episode state, so the
  // cross-call episode carry is covered too.
  for (int round = 0; round < 2; ++round) {
    vec.collect(policy, value_e, value_i, budgets, 0);
    ref.collect_serial(policy, value_e, value_i, budgets, 0);
    for (std::size_t i = 0; i < e; ++i) {
      SCOPED_TRACE("round " + std::to_string(round) + " slot " +
                   std::to_string(i));
      expect_buffers_identical(vec.slot(i).buf, ref.slot(i).buf);
      EXPECT_EQ(vec.slot(i).ep_successes, ref.slot(i).ep_successes);
    }
  }
}

TEST(VecEnv, LockstepMatchesSerialOnDenseTask) {
  const auto env = env::make_env("Hopper");
  for (const std::size_t e : {std::size_t{1}, std::size_t{4}, std::size_t{16}})
    expect_vectorized_matches_serial(*env, e, 96);
}

TEST(VecEnv, LockstepMatchesSerialOnSparseTask) {
  const auto env = env::make_env("SparseHopper");
  for (const std::size_t e : {std::size_t{1}, std::size_t{4}, std::size_t{16}})
    expect_vectorized_matches_serial(*env, e, 96);
}

TEST(VecEnv, RaggedBudgetsKeepLiveSlotsAPrefix) {
  const auto env = env::make_env("Hopper");
  Rng net_rng(29);
  nn::GaussianPolicy policy(env->obs_dim(), env->act_dim(), {16, 16}, net_rng);
  nn::ValueNet value_e(env->obs_dim(), {16, 16}, net_rng);
  nn::ValueNet value_i(env->obs_dim(), {16, 16}, net_rng);

  rl::VecEnv vec, ref;
  vec.configure(*env, make_streams(4, 31));
  ref.configure(*env, make_streams(4, 31));

  // Non-increasing, including a zero-budget slot (must stay untouched).
  const std::vector<int> budgets{70, 70, 33, 0};
  vec.collect(policy, value_e, value_i, budgets, 0);
  ref.collect_serial(policy, value_e, value_i, budgets, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE("slot " + std::to_string(i));
    expect_buffers_identical(vec.slot(i).buf, ref.slot(i).buf);
  }
  EXPECT_EQ(vec.slot(3).buf.size(), 0u);
}

TEST(VecEnv, BatchedVictimPathMatchesSerialOnStatePerturbation) {
  // The threat-model wrapper splits its step around a network-backed frozen
  // victim, so collect() also batches the victim queries — still bitwise.
  const auto inner = env::make_env("Hopper");
  Rng victim_rng(41);
  nn::GaussianPolicy victim(inner->obs_dim(), inner->act_dim(), {16, 16},
                            victim_rng);
  attack::StatePerturbationEnv proto(*inner, rl::PolicyHandle::snapshot(victim),
                                     0.075, attack::RewardMode::Adversary);
  expect_vectorized_matches_serial(proto, 8, 80);
}

TEST(VecEnv, OpaqueVictimCollectsSameTraceAsNetworkHandle) {
  // An ActionFn-shaped victim disables victim batching but must produce the
  // same trace: per-sample PolicyHandle queries are bit-identical either way.
  const auto inner = env::make_env("Hopper");
  Rng victim_rng(43);
  auto victim = std::make_shared<nn::GaussianPolicy>(
      inner->obs_dim(), inner->act_dim(), std::vector<std::size_t>{16, 16},
      victim_rng);
  attack::StatePerturbationEnv net_proto(*inner, rl::PolicyHandle(victim),
                                         0.075, attack::RewardMode::Adversary);
  attack::StatePerturbationEnv fn_proto(
      *inner,
      rl::ActionFn([victim](const std::vector<double>& o) {
        return victim->mean_action(o);
      }),
      0.075, attack::RewardMode::Adversary);

  Rng net_rng(47);
  nn::GaussianPolicy policy(net_proto.obs_dim(), net_proto.act_dim(), {16, 16},
                            net_rng);
  nn::ValueNet value_e(net_proto.obs_dim(), {16, 16}, net_rng);
  nn::ValueNet value_i(net_proto.obs_dim(), {16, 16}, net_rng);

  rl::VecEnv batched, opaque;
  batched.configure(net_proto, make_streams(6, 53));
  opaque.configure(fn_proto, make_streams(6, 53));
  const std::vector<int> budgets(6, 64);
  batched.collect(policy, value_e, value_i, budgets, 0);
  opaque.collect(policy, value_e, value_i, budgets, 0);
  for (std::size_t i = 0; i < 6; ++i) {
    SCOPED_TRACE("slot " + std::to_string(i));
    expect_buffers_identical(batched.slot(i).buf, opaque.slot(i).buf);
  }
}

TEST(VecEnv, BatchedVictimPathMatchesSerialOnOpponentGame) {
  const auto game = env::make_multiagent_env("YouShallNotPass");
  Rng victim_rng(59);
  nn::GaussianPolicy victim(game->victim_obs_dim(), game->victim_act_dim(),
                            {16, 16}, victim_rng);
  attack::OpponentEnv proto(*game, rl::PolicyHandle::snapshot(victim));
  expect_vectorized_matches_serial(proto, 8, 80);
}

std::vector<rl::IterStats> run_trainer(const rl::PpoOptions& opts, int iters,
                                       std::vector<double>& final_params) {
  auto env = env::make_env("Hopper");
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  std::vector<rl::IterStats> out;
  for (int i = 0; i < iters; ++i) out.push_back(trainer.iterate());
  final_params = trainer.policy().flat_params();
  return out;
}

void expect_identical(const std::vector<rl::IterStats>& a,
                      const std::vector<rl::IterStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean_return, b[i].mean_return) << "iter " << i;
    EXPECT_EQ(a[i].mean_surrogate, b[i].mean_surrogate) << "iter " << i;
    EXPECT_EQ(a[i].episodes, b[i].episodes) << "iter " << i;
    EXPECT_EQ(a[i].policy_loss, b[i].policy_loss) << "iter " << i;
    EXPECT_EQ(a[i].value_loss, b[i].value_loss) << "iter " << i;
    EXPECT_EQ(a[i].approx_kl, b[i].approx_kl) << "iter " << i;
    EXPECT_EQ(a[i].entropy, b[i].entropy) << "iter " << i;
  }
}

TEST(VecEnv, TrainerTraceIdenticalFor1And4Threads) {
  rl::PpoOptions opts;
  opts.steps_per_iter = 512;
  opts.num_workers = 2;
  opts.envs_per_worker = 4;

  std::vector<double> serial_params, pooled_params;
  std::vector<rl::IterStats> serial_stats, pooled_stats;
  {
    ScopedSerial serial;
    serial_stats = run_trainer(opts, 3, serial_params);
  }
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    pooled_stats = run_trainer(opts, 3, pooled_params);
  }
  expect_identical(serial_stats, pooled_stats);
  EXPECT_EQ(serial_params, pooled_params);
}

TEST(VecEnv, TrainerTraceInvariantAcrossWorkerSlotFactorizations) {
  // 4 total envs as 4×1, 2×2 and 1×4 — same global slot streams, same merge
  // order, so the whole training trace must agree bitwise. steps_per_iter is
  // chosen to exercise the uneven-budget remainder (130 = 33+33+32+32).
  const std::vector<std::pair<int, int>> shapes{{4, 1}, {2, 2}, {1, 4}};
  std::vector<std::vector<rl::IterStats>> stats(shapes.size());
  std::vector<std::vector<double>> params(shapes.size());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    rl::PpoOptions opts;
    opts.steps_per_iter = 130;
    opts.num_workers = shapes[i].first;
    opts.envs_per_worker = shapes[i].second;
    stats[i] = run_trainer(opts, 2, params[i]);
  }
  for (std::size_t i = 1; i < shapes.size(); ++i) {
    SCOPED_TRACE("factorization " + std::to_string(shapes[i].first) + "x" +
                 std::to_string(shapes[i].second));
    expect_identical(stats[0], stats[i]);
    EXPECT_EQ(params[0], params[i]);
  }
}

TEST(VecEnv, VectorizedFlagIsBitIdentical) {
  // vectorized_rollout is purely a throughput knob: the lockstep engine and
  // the per-sample reference loop must train identically.
  rl::PpoOptions fast, slow;
  fast.steps_per_iter = slow.steps_per_iter = 256;
  fast.num_workers = slow.num_workers = 1;
  fast.envs_per_worker = slow.envs_per_worker = 4;
  fast.vectorized_rollout = true;
  slow.vectorized_rollout = false;

  std::vector<double> fast_params, slow_params;
  const auto fast_stats = run_trainer(fast, 2, fast_params);
  const auto slow_stats = run_trainer(slow, 2, slow_params);
  expect_identical(fast_stats, slow_stats);
  EXPECT_EQ(fast_params, slow_params);
}

TEST(VecNormalizer, SingleRowBatchUpdateIsBitwiseEqual) {
  Rng rng(61);
  rl::VecNormalizer step(5), batch(5);
  nn::Batch row;
  row.resize(1, 5);
  for (int t = 0; t < 50; ++t) {
    const auto x = rng.normal_vec(5, 0.5, 2.0);
    row.set_row(0, x);
    step.update(x);
    batch.update_batch(row);
  }
  EXPECT_EQ(step.count(), batch.count());
  EXPECT_EQ(step.mean(), batch.mean());
  EXPECT_EQ(step.variance(), batch.variance());
}

TEST(VecNormalizer, BatchUpdateMatchesPerStepToMergeTolerance) {
  // Chan/Welford parallel merge reassociates the per-step sums; the moments
  // must agree with the streaming reference to tight relative tolerance.
  Rng rng(67);
  rl::VecNormalizer step(7), batch(7);
  nn::Batch rows;
  for (int tick = 0; tick < 40; ++tick) {
    const std::size_t e = 1 + static_cast<std::size_t>(tick % 16);
    rows.resize(e, 7);
    for (std::size_t r = 0; r < e; ++r) {
      const auto x = rng.normal_vec(7, -1.0, 3.0);
      rows.set_row(r, x);
      step.update(x);
    }
    batch.update_batch(rows);
  }
  ASSERT_EQ(step.count(), batch.count());
  const auto sv = step.variance(), bv = batch.variance();
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(step.mean()[i], batch.mean()[i],
                1e-12 * (1.0 + std::abs(step.mean()[i])));
    EXPECT_NEAR(sv[i], bv[i], 1e-10 * (1.0 + sv[i]));
  }
}

TEST(VecEnv, ObsNormalizerSeesTheSameStreamOnBothPaths) {
  const auto env = env::make_env("Hopper");
  Rng net_rng(71);
  nn::GaussianPolicy policy(env->obs_dim(), env->act_dim(), {16, 16}, net_rng);
  nn::ValueNet value_e(env->obs_dim(), {16, 16}, net_rng);
  nn::ValueNet value_i(env->obs_dim(), {16, 16}, net_rng);

  rl::VecEnv vec, ref;
  vec.configure(*env, make_streams(4, 73));
  ref.configure(*env, make_streams(4, 73));
  rl::VecNormalizer vec_norm(env->obs_dim()), ref_norm(env->obs_dim());
  vec.set_obs_normalizer(&vec_norm);
  ref.set_obs_normalizer(&ref_norm);

  const std::vector<int> budgets(4, 64);
  vec.collect(policy, value_e, value_i, budgets, 0);
  ref.collect_serial(policy, value_e, value_i, budgets, 0);

  // Both paths fold the same observation multiset (tick-major vs slot-major
  // order), so the merged moments agree to merge tolerance — and the buffers
  // stay bit-identical (the tracker is telemetry only).
  ASSERT_EQ(vec_norm.count(), ref_norm.count());
  const auto vv = vec_norm.variance(), rv = ref_norm.variance();
  for (std::size_t i = 0; i < vec_norm.dim(); ++i) {
    EXPECT_NEAR(vec_norm.mean()[i], ref_norm.mean()[i],
                1e-12 * (1.0 + std::abs(ref_norm.mean()[i])));
    EXPECT_NEAR(vv[i], rv[i], 1e-10 * (1.0 + rv[i]));
  }
  for (std::size_t i = 0; i < 4; ++i)
    expect_buffers_identical(vec.slot(i).buf, ref.slot(i).buf);
}

}  // namespace
}  // namespace imap
