// Checkpoint/resume contract: snapshot at iteration k, restore into a fresh
// object built with identical constructor arguments, train the remaining
// iterations — every stat and every parameter must be bit-identical to a run
// that never stopped. Covers the PPO trainer (serial and vectorized), the
// IMAP attack stack (KNN union buffers + BR dual state), ATLA alternation,
// the victim-training session, the zoo and the experiment runner.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/experiment.h"
#include "core/imap_trainer.h"
#include "core/zoo.h"
#include "defense/atla.h"
#include "defense/victim_trainer.h"
#include "env/hopper.h"
#include "env/sparse.h"
#include "rl/ppo.h"
#include "temp_dir.h"

namespace imap {
namespace {

rl::PpoOptions tiny_ppo() {
  rl::PpoOptions o;
  o.hidden = {8, 8};
  o.steps_per_iter = 128;
  o.epochs = 2;
  o.minibatch = 64;
  return o;
}

void expect_same_stats(const rl::IterStats& a, const rl::IterStats& b) {
  EXPECT_EQ(a.iter, b.iter);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.mean_return, b.mean_return);
  EXPECT_EQ(a.mean_surrogate, b.mean_surrogate);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.policy_loss, b.policy_loss);
  EXPECT_EQ(a.value_loss, b.value_loss);
  EXPECT_EQ(a.approx_kl, b.approx_kl);
  EXPECT_EQ(a.entropy, b.entropy);
  EXPECT_EQ(a.mean_intrinsic, b.mean_intrinsic);
  EXPECT_EQ(a.tau, b.tau);
}

void expect_same_stats(const std::vector<rl::IterStats>& a,
                       const std::vector<rl::IterStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_same_stats(a[i], b[i]);
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::unique_temp_dir("imap_test_snapshot");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  /// The headline property, parameterised over the env and options: train T
  /// iterations straight vs snapshot@k → restore into a fresh trainer → train
  /// the remaining T−k.
  void expect_ppo_resume_identical(const rl::Env& env, rl::PpoOptions opts,
                                   int total_iters, int snap_at) {
    rl::PpoTrainer straight(env, opts, Rng(17));
    std::vector<rl::IterStats> want;
    for (int i = 0; i < total_iters; ++i) want.push_back(straight.iterate());

    rl::PpoTrainer first(env, opts, Rng(17));
    for (int i = 0; i < snap_at; ++i) first.iterate();
    const std::string snap = path("ppo.snap");
    ASSERT_TRUE(first.snapshot(snap));

    rl::PpoTrainer resumed(env, opts, Rng(17));
    ASSERT_TRUE(resumed.restore(snap));
    EXPECT_EQ(resumed.steps_done(), first.steps_done());
    std::vector<rl::IterStats> got(want.begin(), want.begin() + snap_at);
    for (int i = snap_at; i < total_iters; ++i) got.push_back(resumed.iterate());

    expect_same_stats(want, got);
    EXPECT_EQ(resumed.policy().flat_params(), straight.policy().flat_params());
  }

  std::string dir_;
};

TEST_F(SnapshotTest, PpoResumesDenseTaskBitIdentically) {
  // Mid-episode snapshot on purpose: hopper episodes outlive one iteration,
  // so restore must replay the in-flight episode, not just reload weights.
  expect_ppo_resume_identical(*env::make_hopper(), tiny_ppo(),
                              /*total_iters=*/4, /*snap_at=*/2);
}

TEST_F(SnapshotTest, PpoResumesSparseTaskBitIdentically) {
  expect_ppo_resume_identical(*env::make_sparse_hopper(), tiny_ppo(),
                              /*total_iters=*/3, /*snap_at=*/1);
}

TEST_F(SnapshotTest, PpoResumesVectorizedRolloutBitIdentically) {
  auto opts = tiny_ppo();
  opts.num_workers = 2;
  opts.envs_per_worker = 2;  // exercises per-slot episode state in "ppo/workers"
  expect_ppo_resume_identical(*env::make_hopper(), opts,
                              /*total_iters=*/3, /*snap_at=*/2);
}

TEST_F(SnapshotTest, PpoRestoreRejectsMismatchedTrainer) {
  const auto env = env::make_hopper();
  rl::PpoTrainer t(*env, tiny_ppo(), Rng(17));
  t.iterate();
  const std::string snap = path("ppo.snap");
  ASSERT_TRUE(t.snapshot(snap));

  // Missing file: quiet false (the caller starts fresh).
  rl::PpoTrainer fresh(*env, tiny_ppo(), Rng(17));
  EXPECT_FALSE(fresh.restore(path("missing.snap")));

  // Wrong architecture: loud CheckError, never a silent mis-read.
  auto other = tiny_ppo();
  other.hidden = {8};
  rl::PpoTrainer mismatched(*env, other, Rng(17));
  EXPECT_THROW(mismatched.restore(snap), CheckError);
}

rl::ActionFn feedback_victim() {
  return [](const std::vector<double>& obs) {
    const auto p = env::hopper_params();
    std::vector<double> u(p.n_joints);
    for (std::size_t j = 0; j < p.n_joints; ++j)
      u[j] = 0.3 * p.c[j] - 3.0 * (obs[0] + 0.4 * obs[1]) * p.d[j];
    return u;
  };
}

TEST_F(SnapshotTest, ImapResumesWithKnnAndBiasReductionBitIdentically) {
  // IMAP-PC with BR: the snapshot must carry the PC union buffers (KNN
  // reservoirs + their Rng) and the BR dual state on top of the PPO state.
  const auto env = env::make_hopper();
  core::ImapOptions opts;
  opts.reg.type = core::RegularizerType::PC;
  opts.bias_reduction = true;
  opts.surrogate_scale = 500.0;
  opts.ppo = tiny_ppo();

  core::ImapTrainer straight(*env, feedback_victim(), 0.075, opts, Rng(23));
  std::vector<rl::IterStats> want;
  for (int i = 0; i < 4; ++i) want.push_back(straight.iterate());

  core::ImapTrainer first(*env, feedback_victim(), 0.075, opts, Rng(23));
  for (int i = 0; i < 2; ++i) first.iterate();
  const std::string snap = path("imap.snap");
  ASSERT_TRUE(first.snapshot(snap));

  core::ImapTrainer resumed(*env, feedback_victim(), 0.075, opts, Rng(23));
  ASSERT_TRUE(resumed.restore(snap));
  std::vector<rl::IterStats> got(want.begin(), want.begin() + 2);
  for (int i = 2; i < 4; ++i) got.push_back(resumed.iterate());

  expect_same_stats(want, got);
  EXPECT_EQ(resumed.trainer().policy().flat_params(),
            straight.trainer().policy().flat_params());
  EXPECT_EQ(resumed.tau(), straight.tau());
}

TEST_F(SnapshotTest, AtlaResumesAcrossRoundBoundaryBitIdentically) {
  // ATLA-SA: the snapshot carries the round counter, the frozen round
  // adversary, the SA hook's Rng stream and the full victim trainer.
  const auto env = env::make_hopper();
  const auto make = [&] {
    return defense::AtlaTrainer(*env, /*with_sa=*/true, /*steps=*/768,
                                /*eps=*/0.075, /*reg_coef=*/1.0, tiny_ppo(),
                                /*rounds=*/3, /*adversary_fraction=*/0.5,
                                Rng(31));
  };

  auto straight = make();
  std::vector<std::vector<rl::IterStats>> want;
  while (!straight.done()) want.push_back(straight.run_round());
  ASSERT_EQ(want.size(), 3u);

  auto first = make();
  first.run_round();
  first.run_round();  // past round 1, so an adversary is in the checkpoint
  const std::string snap = path("atla.snap");
  ASSERT_TRUE(first.snapshot(snap));

  auto resumed = make();
  ASSERT_TRUE(resumed.restore(snap));
  EXPECT_EQ(resumed.rounds_done(), 2);
  const auto got = resumed.run_round();
  EXPECT_TRUE(resumed.done());

  expect_same_stats(want[2], got);
  EXPECT_EQ(resumed.policy().flat_params(), straight.policy().flat_params());
}

TEST_F(SnapshotTest, VictimSessionResumesPerturbedPhaseBitIdentically) {
  // SA defense: snapshot taken in phase 1, after the session has switched to
  // the noise env + smoothness hook — the restore must reinstall both and
  // continue their shared Rng stream exactly.
  const auto env = env::make_hopper();
  defense::DefenseOptions opts;
  opts.eps = 0.075;
  opts.ppo = tiny_ppo();
  const auto make = [&] {
    return defense::VictimTrainSession(*env, defense::DefenseKind::SA,
                                       /*steps=*/512, opts, Rng(41));
  };

  auto straight = make();
  while (!straight.done()) straight.advance();

  auto first = make();
  first.advance();
  first.advance();
  first.advance();  // 384 of 512 steps: phase 1 is active
  ASSERT_FALSE(first.done());
  const std::string snap = path("victim.snap");
  ASSERT_TRUE(first.snapshot(snap));

  auto resumed = make();
  ASSERT_TRUE(resumed.restore(snap));
  while (!resumed.done()) resumed.advance();

  EXPECT_EQ(resumed.policy().flat_params(), straight.policy().flat_params());

  // Kind mismatch is rejected: an SA checkpoint cannot resume RADIAL.
  defense::VictimTrainSession wrong(*env, defense::DefenseKind::RADIAL, 512,
                                    opts, Rng(41));
  EXPECT_THROW(wrong.restore(snap), CheckError);
}

TEST_F(SnapshotTest, ZooSnapshotCadenceDoesNotChangeTheVictim) {
  // Snapshotting every advance unit vs never must produce bit-identical
  // victims, and a finished checkpoint supersedes (removes) its snapshot.
  core::Zoo plain(dir_ + "/plain", 0.01, 7, /*snapshot_every=*/0);
  core::Zoo snappy(dir_ + "/snappy", 0.01, 7, /*snapshot_every=*/1);
  const auto a = plain.victim("Hopper", "PPO");
  const auto b = snappy.victim("Hopper", "PPO");
  EXPECT_EQ(a.flat_params(), b.flat_params());
  for (const auto& e :
       std::filesystem::recursive_directory_iterator(dir_ + "/snappy"))
    EXPECT_NE(e.path().extension(), ".snap") << e.path();
}

TEST_F(SnapshotTest, RunnerHaltLeavesSnapshotAndResumesToSameResult) {
  core::AttackPlan plan;
  plan.env_name = "FetchReach";
  plan.attack = core::AttackKind::SaRl;
  plan.attack_steps = 4096;  // two iterations at the default 2048
  plan.eval_episodes = 5;

  BenchConfig cfg;
  cfg.zoo_dir = dir_ + "/zoo";
  cfg.scale = 0.01;
  cfg.seed = 7;

  // Uninterrupted reference in its own zoo (victims retrain
  // deterministically from the seed).
  BenchConfig ref_cfg = cfg;
  ref_cfg.zoo_dir = dir_ + "/zoo_ref";
  core::ExperimentRunner reference(ref_cfg);
  const auto want = reference.run(plan);
  ASSERT_TRUE(want.completed);

  // Halted run: one iteration, then a resumable snapshot and no cache entry.
  BenchConfig halt_cfg = cfg;
  halt_cfg.snapshot_every = 1;
  halt_cfg.halt_after_iters = 1;
  core::ExperimentRunner halted(halt_cfg);
  const auto partial = halted.run(plan);
  EXPECT_FALSE(partial.completed);
  EXPECT_EQ(partial.curve.size(), 1u);
  ASSERT_TRUE(std::filesystem::exists(cfg.zoo_dir + "/snapshots"));
  EXPECT_FALSE(std::filesystem::exists(cfg.zoo_dir + "/results"));

  // Resume in a fresh process (runner): picks the snapshot up, finishes, and
  // the outcome matches the uninterrupted reference bit for bit.
  core::ExperimentRunner resumed(cfg);
  const auto got = resumed.run(plan);
  ASSERT_TRUE(got.completed);
  ASSERT_EQ(got.curve.size(), want.curve.size());
  for (std::size_t i = 0; i < want.curve.size(); ++i) {
    EXPECT_EQ(got.curve[i].steps, want.curve[i].steps);
    EXPECT_EQ(got.curve[i].victim_success, want.curve[i].victim_success);
    EXPECT_EQ(got.curve[i].tau, want.curve[i].tau);
  }
  EXPECT_EQ(got.victim_eval.episode_returns, want.victim_eval.episode_returns);

  // The snapshot is gone; the finished result is cached instead.
  for (const auto& e : std::filesystem::recursive_directory_iterator(
           cfg.zoo_dir + "/snapshots"))
    EXPECT_NE(e.path().extension(), ".snap") << e.path();
  EXPECT_TRUE(std::filesystem::exists(cfg.zoo_dir + "/results"));
}

TEST_F(SnapshotTest, RunnerResumesRandomizedScenarioBitIdentically) {
  // Same halt/resume contract, but through the scenario layer: a procedurally
  // randomized cell (seeded DR + delay + perturbation channel) must come back
  // from a snapshot bit-identical to the uninterrupted run — i.e. the slot Rng
  // discipline that draws dynamics factors at reset survives the round trip.
  core::AttackPlan plan;
  plan.scenario = "hopper+obs_perturb:0.075+obs_delay:1+dr[mass:0.9..1.1]@11";
  plan.attack = core::AttackKind::ImapPC;
  plan.attack_steps = 4096;
  plan.eval_episodes = 5;

  BenchConfig cfg;
  cfg.zoo_dir = dir_ + "/zoo";
  cfg.scale = 0.01;
  cfg.seed = 7;

  BenchConfig ref_cfg = cfg;
  ref_cfg.zoo_dir = dir_ + "/zoo_ref";
  core::ExperimentRunner reference(ref_cfg);
  const auto want = reference.run(plan);
  ASSERT_TRUE(want.completed);

  BenchConfig halt_cfg = cfg;
  halt_cfg.snapshot_every = 1;
  halt_cfg.halt_after_iters = 1;
  core::ExperimentRunner halted(halt_cfg);
  const auto partial = halted.run(plan);
  EXPECT_FALSE(partial.completed);
  EXPECT_EQ(partial.curve.size(), 1u);

  core::ExperimentRunner resumed(cfg);
  const auto got = resumed.run(plan);
  ASSERT_TRUE(got.completed);
  ASSERT_EQ(got.curve.size(), want.curve.size());
  for (std::size_t i = 0; i < want.curve.size(); ++i) {
    EXPECT_EQ(got.curve[i].steps, want.curve[i].steps);
    EXPECT_EQ(got.curve[i].victim_success, want.curve[i].victim_success);
    EXPECT_EQ(got.curve[i].tau, want.curve[i].tau);
  }
  EXPECT_EQ(got.victim_eval.episode_returns, want.victim_eval.episode_returns);
}

}  // namespace
}  // namespace imap
