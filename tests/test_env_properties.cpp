// Parameterized property suite: contracts every registered single-agent
// environment must satisfy (the Gym-style API invariants the trainers and
// threat-model wrappers rely on).

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "env/registry.h"

namespace imap::env {
namespace {

class EnvContract : public ::testing::TestWithParam<std::string> {};

TEST_P(EnvContract, SpecExistsWithPositiveEpsilon) {
  const auto& s = spec(GetParam());
  EXPECT_EQ(s.name, GetParam());
  EXPECT_GT(s.epsilon, 0.0);
}

TEST_P(EnvContract, ResetReturnsCorrectWidth) {
  auto env = make_env(GetParam());
  Rng rng(3);
  const auto obs = env->reset(rng);
  EXPECT_EQ(obs.size(), env->obs_dim());
  for (const double x : obs) EXPECT_TRUE(std::isfinite(x));
}

TEST_P(EnvContract, StepContract) {
  auto env = make_env(GetParam());
  Rng rng(5);
  env->reset(rng);
  Rng arng(7);
  for (int episode = 0; episode < 2; ++episode) {
    int steps = 0;
    while (true) {
      const auto a = env->action_space().sample(arng);
      const auto sr = env->step(a);
      ++steps;
      EXPECT_EQ(sr.obs.size(), env->obs_dim());
      for (const double x : sr.obs) ASSERT_TRUE(std::isfinite(x));
      ASSERT_TRUE(std::isfinite(sr.reward));
      EXPECT_GE(sr.surrogate, 0.0);
      EXPECT_LE(sr.surrogate, 1.0);
      // done and truncated are mutually exclusive in this library.
      EXPECT_FALSE(sr.done && sr.truncated);
      if (sr.done || sr.truncated) break;
      ASSERT_LE(steps, env->max_steps() + 1) << "episode never ended";
    }
    EXPECT_LE(steps, env->max_steps() + 1);
    env->reset(rng);
  }
}

TEST_P(EnvContract, DeterministicUnderSeed) {
  auto a = make_env(GetParam());
  auto b = make_env(GetParam());
  Rng ra(11), rb(11);
  auto oa = a->reset(ra);
  auto ob = b->reset(rb);
  ASSERT_EQ(oa, ob);
  Rng act_rng(13);
  for (int i = 0; i < 30; ++i) {
    const auto act = a->action_space().sample(act_rng);
    const auto sa = a->step(act);
    const auto sb = b->step(act);
    ASSERT_EQ(sa.obs, sb.obs);
    ASSERT_DOUBLE_EQ(sa.reward, sb.reward);
    ASSERT_EQ(sa.done, sb.done);
    if (sa.done || sa.truncated) {
      a->reset(ra);
      b->reset(rb);
    }
  }
}

TEST_P(EnvContract, CloneDivergesIndependently) {
  auto env = make_env(GetParam());
  Rng rng(17);
  env->reset(rng);
  auto copy = env->clone();
  const auto a0 = env->action_space().clamp(
      std::vector<double>(env->act_dim(), 0.5));
  const auto s1 = env->step(a0);
  const auto s2 = copy->step(a0);
  EXPECT_EQ(s1.obs, s2.obs);  // same state ⇒ same transition
}

TEST_P(EnvContract, ActionSpaceIsSane) {
  auto env = make_env(GetParam());
  const auto& box = env->action_space();
  EXPECT_EQ(box.dim(), env->act_dim());
  for (std::size_t i = 0; i < box.dim(); ++i)
    EXPECT_LT(box.low()[i], box.high()[i]);
}

TEST_P(EnvContract, TrainingEnvSharesActionInterface) {
  auto deploy = make_env(GetParam());
  auto train = make_training_env(GetParam());
  // The deployed victim network must be pluggable into both.
  EXPECT_EQ(deploy->obs_dim(), train->obs_dim());
  EXPECT_EQ(deploy->act_dim(), train->act_dim());
}

std::vector<std::string> all_single_agent_names() {
  std::vector<std::string> names;
  for (const auto& s : single_agent_specs()) names.push_back(s.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvContract,
                         ::testing::ValuesIn(all_single_agent_names()),
                         [](const auto& param_info) { return param_info.param; });

TEST(Registry, ThirteenSingleAgentTasks) {
  EXPECT_EQ(single_agent_specs().size(), 13u);  // as in the paper
  EXPECT_EQ(multi_agent_specs().size(), 2u);
}

TEST(Registry, PaperEpsilons) {
  EXPECT_DOUBLE_EQ(spec("Hopper").epsilon, 0.075);
  EXPECT_DOUBLE_EQ(spec("Walker2d").epsilon, 0.05);
  EXPECT_DOUBLE_EQ(spec("HalfCheetah").epsilon, 0.15);
  EXPECT_DOUBLE_EQ(spec("Ant").epsilon, 0.15);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_env("NotAnEnv"), CheckError);
  EXPECT_THROW(make_multiagent_env("Hopper"), CheckError);
  EXPECT_THROW(spec("NotAnEnv"), CheckError);
}

TEST(Registry, MultiAgentFactoryWorks) {
  for (const auto& s : multi_agent_specs()) {
    auto game = make_multiagent_env(s.name);
    EXPECT_EQ(game->name(), s.name);
    EXPECT_FALSE(victim_training_pool(s.name).empty());
  }
}

}  // namespace
}  // namespace imap::env
