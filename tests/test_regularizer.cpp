#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "core/regularizer.h"

namespace imap::core {
namespace {

// Build a rollout whose states are mostly clustered at the origin with a few
// far-flung outliers — the canonical situation where coverage bonuses must
// reward the outliers.
rl::RolloutBuffer clustered_rollout(std::size_t dim, std::size_t n_cluster,
                                    std::size_t n_outliers, Rng& rng) {
  rl::RolloutBuffer buf;
  for (std::size_t i = 0; i < n_cluster; ++i)
    buf.add(rng.normal_vec(dim, 0.0, 0.05), {0.0}, 0.0, 0.0, 0.0);
  for (std::size_t i = 0; i < n_outliers; ++i) {
    auto far = rng.normal_vec(dim, 0.0, 0.05);
    far[0] += 5.0 + static_cast<double>(i);
    buf.add(std::move(far), {0.0}, 0.0, 0.0, 0.0);
  }
  return buf;
}

nn::GaussianPolicy dummy_policy(std::size_t obs_dim, std::size_t act_dim) {
  Rng rng(99);
  return nn::GaussianPolicy(obs_dim, act_dim, {8}, rng);
}

TEST(Regularizer, NamesRoundTrip) {
  for (const auto t : {RegularizerType::SC, RegularizerType::PC,
                       RegularizerType::R, RegularizerType::D})
    EXPECT_EQ(regularizer_from_string(to_string(t)), t);
  EXPECT_THROW(regularizer_from_string("XX"), CheckError);
}

TEST(ObsSlice, ProjectionSemantics) {
  const std::vector<double> s{0.0, 1.0, 2.0, 3.0};
  ObsSlice whole;
  EXPECT_EQ(whole.project(s), s);
  EXPECT_EQ(whole.dim(4), 4u);
  ObsSlice mid{1, 3};
  EXPECT_EQ(mid.project(s), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(mid.dim(4), 2u);
}

TEST(ScRegularizer, RewardsNovelStates) {
  Rng rng(3);
  auto buf = clustered_rollout(4, 120, 4, rng);
  RegularizerOptions opts;
  opts.type = RegularizerType::SC;
  auto reg = make_regularizer(opts, 4, 1, rng.split(1));
  const auto policy = dummy_policy(4, 1);
  reg->compute(buf, policy);

  // Mean bonus of the outliers must dominate the cluster's.
  double cluster = 0.0, outlier = 0.0;
  for (std::size_t i = 0; i < 120; ++i) cluster += buf.rew_i[i];
  for (std::size_t i = 120; i < buf.size(); ++i) outlier += buf.rew_i[i];
  cluster /= 120.0;
  outlier /= 4.0;
  EXPECT_GT(outlier, 3.0 * cluster + 0.1);
  for (const double r : buf.rew_i) EXPECT_TRUE(std::isfinite(r));
}

TEST(PcRegularizer, PenalizesRevisitingAcrossIterations) {
  Rng rng(5);
  RegularizerOptions opts;
  opts.type = RegularizerType::PC;
  opts.pc_capacity = 1024;
  auto reg = make_regularizer(opts, 3, 1, rng.split(1));
  const auto policy = dummy_policy(3, 1);

  // Iteration 1: cluster at the origin.
  auto buf1 = clustered_rollout(3, 100, 0, rng);
  reg->compute(buf1, policy);
  const double first_visit = mean(buf1.rew_i);

  // Iteration 2: same cluster again — B now contains it, bonus must shrink.
  auto buf2 = clustered_rollout(3, 100, 0, rng);
  reg->compute(buf2, policy);
  const double revisit = mean(buf2.rew_i);
  EXPECT_LT(revisit, 2.0 * first_visit);  // no blow-up on revisits

  // Iteration 3: a brand-new region scores higher than the revisit.
  rl::RolloutBuffer buf3;
  for (int i = 0; i < 100; ++i) {
    auto s = rng.normal_vec(3, 0.0, 0.05);
    s[1] += 8.0;
    buf3.add(std::move(s), {0.0}, 0.0, 0.0, 0.0);
  }
  reg->compute(buf3, policy);
  EXPECT_GT(mean(buf3.rew_i), revisit);
}

TEST(PcRegularizer, MultiAgentMarginalsRespectXi) {
  Rng rng(7);
  RegularizerOptions opts;
  opts.type = RegularizerType::PC;
  opts.adversary_slice = {0, 2};
  opts.victim_slice = {2, 4};
  opts.xi = 1.0;  // only the victim marginal counts
  auto reg = make_regularizer(opts, 4, 1, rng.split(1));
  const auto policy = dummy_policy(4, 1);

  // States novel in the ADVERSARY marginal only must earn ~nothing at ξ=1.
  rl::RolloutBuffer buf;
  for (int i = 0; i < 60; ++i)
    buf.add({0.0, 0.0, 0.1, 0.1}, {0.0}, 0.0, 0.0, 0.0);
  for (int i = 0; i < 4; ++i)
    buf.add({9.0 + i, 9.0, 0.1, 0.1}, {0.0}, 0.0, 0.0, 0.0);  // adv novel
  reg->compute(buf, policy);
  double cluster = 0.0, adv_novel = 0.0;
  for (int i = 0; i < 60; ++i) cluster += buf.rew_i[i];
  for (std::size_t i = 60; i < buf.size(); ++i) adv_novel += buf.rew_i[i];
  EXPECT_NEAR(adv_novel / 4.0, cluster / 60.0, 0.5);
}

TEST(RiskRegularizer, NegativeDistanceToTarget) {
  Rng rng(9);
  RegularizerOptions opts;
  opts.type = RegularizerType::R;
  opts.risk_target = {1.0, 0.0};
  auto reg = make_regularizer(opts, 2, 1, rng.split(1));
  const auto policy = dummy_policy(2, 1);

  rl::RolloutBuffer buf;
  buf.add({1.0, 0.0}, {0.0}, 0.0, 0.0, 0.0);  // at the target
  buf.add({4.0, 4.0}, {0.0}, 0.0, 0.0, 0.0);  // far
  reg->compute(buf, policy);
  EXPECT_NEAR(buf.rew_i[0], 0.0, 1e-12);
  EXPECT_NEAR(buf.rew_i[1], -5.0, 1e-12);
  EXPECT_LT(buf.rew_i[1], buf.rew_i[0]);
}

TEST(RiskRegularizer, RequiresTarget) {
  Rng rng(9);
  RegularizerOptions opts;
  opts.type = RegularizerType::R;
  EXPECT_THROW(make_regularizer(opts, 2, 1, rng), CheckError);
}

TEST(MimicPolicy, BehaviourCloningConvergesToTargetPolicy) {
  // Direct test of the D-regularizer's inner machinery: with a generous
  // learning rate and enough supervised passes, the mimic closes the KL gap
  // to a fixed target policy.
  Rng rng(21);
  nn::GaussianPolicy target(3, 2, {8}, rng);
  // Make the target clearly non-trivial.
  auto& params = target.net().params();
  for (std::size_t i = params.size() - 2; i < params.size(); ++i)
    params[i] += 1.0;  // output biases

  MimicPolicy mimic(3, 2, {8}, rng.split(1), /*lr=*/0.02);
  rl::RolloutBuffer buf;
  Rng srng(5);
  for (int i = 0; i < 512; ++i) {
    const auto s = srng.normal_vec(3);
    buf.add(s, target.act(s, srng), 0.0, 0.0, 0.0);
  }

  auto mean_kl = [&] {
    double acc = 0.0;
    Rng qrng(9);
    for (int i = 0; i < 64; ++i)
      acc += mimic.kl_from(target, qrng.normal_vec(3));
    return acc / 64.0;
  };

  const double before = mean_kl();
  mimic.update(buf, /*epochs=*/60, /*minibatch=*/128);
  const double after = mean_kl();
  EXPECT_GT(before, 0.05);
  EXPECT_LT(after, 0.5 * before);
}

TEST(DivergenceRegularizer, PositiveBoundedAndTracksPolicyDistance) {
  Rng rng(11);
  RegularizerOptions opts;
  opts.type = RegularizerType::D;
  auto reg = make_regularizer(opts, 3, 2, rng.split(1));

  Rng prng(42);
  nn::GaussianPolicy policy(3, 2, {8}, prng);

  // Rollout of states with the policy's own actions.
  auto make_buf = [&] {
    rl::RolloutBuffer buf;
    Rng srng(5);
    for (int i = 0; i < 256; ++i) {
      const auto s = srng.normal_vec(3);
      buf.add(s, policy.act(s, srng), 0.0, 0.0, 0.0);
    }
    return buf;
  };

  auto buf = make_buf();
  reg->compute(buf, policy);
  const double kl_near = mean(buf.rew_i);
  EXPECT_GE(kl_near, 0.0);
  for (const double r : buf.rew_i) {
    EXPECT_GE(r, 0.0);   // KL is non-negative
    EXPECT_LE(r, 50.0);  // and clamped
  }

  // Move the policy away from where the mimic has seen it: the bonus must
  // grow — "deviate from your past selves and earn exploration reward".
  auto& params = policy.net().params();
  for (std::size_t i = params.size() - 2; i < params.size(); ++i)
    params[i] += 1.5;  // output biases
  auto buf2 = make_buf();
  reg->compute(buf2, policy);
  EXPECT_GT(mean(buf2.rew_i), kl_near + 0.1);
}

}  // namespace
}  // namespace imap::core
