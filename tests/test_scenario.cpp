#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "attack/threat_model.h"
#include "common/check.h"
#include "env/hopper.h"
#include "env/registry.h"
#include "scenario/channels.h"
#include "scenario/scenario_env.h"
#include "scenario/spec.h"

namespace imap::scenario {
namespace {

// Frozen posture-feedback "victim" (same controller the threat-model tests
// use): survives long enough to exercise every channel.
rl::ActionFn feedback_victim() {
  return [](const std::vector<double>& obs) {
    const auto p = env::hopper_params();
    std::vector<double> u(p.n_joints);
    for (std::size_t j = 0; j < p.n_joints; ++j)
      u[j] = 0.3 * p.c[j] - 3.0 * (obs[0] + 0.4 * obs[1]) * p.d[j];
    return u;
  };
}

TEST(ScenarioSpec, TrivialCanonicalizesToRegistryName) {
  EXPECT_EQ(canonical("hopper"), "Hopper");
  EXPECT_EQ(canonical("  SPARSEhalfcheetah "), "SparseHalfCheetah");
  EXPECT_TRUE(parse("walker2d").trivial());
  // Multi-agent names are valid trivial scenarios.
  EXPECT_EQ(canonical("youshallnotpass"), "YouShallNotPass");
}

TEST(ScenarioSpec, CanonicalSortsChannelsAndDrAndRoundTrips) {
  const std::string messy =
      "hopper+dr[mass:0.8..1.2,gain:0.9..1.1]+obs_delay:2+obs_perturb:0.1@7";
  const std::string canon = canonical(messy);
  EXPECT_EQ(canon,
            "Hopper+obs_perturb:0.1+obs_delay:2+dr[gain:0.9..1.1,"
            "mass:0.8..1.2]@7");
  // parse -> canonical -> parse is the identity (idempotent canonical form).
  EXPECT_EQ(canonical(canon), canon);
  const auto spec = parse(canon);
  EXPECT_EQ(spec.env, "Hopper");
  ASSERT_EQ(spec.channels.size(), 2u);
  EXPECT_EQ(spec.channels[0].kind, ChannelKind::ObsPerturb);
  EXPECT_EQ(spec.channels[1].kind, ChannelKind::ObsDelay);
  ASSERT_EQ(spec.dr.size(), 2u);
  EXPECT_EQ(spec.dr[0].key, "gain");
  EXPECT_EQ(spec.dr[1].key, "mass");
  EXPECT_TRUE(spec.has_seed);
  EXPECT_EQ(spec.seed, 7u);
}

TEST(ScenarioSpec, ChannelDefaultsResolveFromRegistry) {
  const auto spec = parse("hopper+obs_perturb+obs_delay");
  EXPECT_DOUBLE_EQ(spec.channel(ChannelKind::ObsPerturb)->param, 0.075);
  EXPECT_DOUBLE_EQ(spec.channel(ChannelKind::ObsDelay)->param, 1.0);
  EXPECT_EQ(spec.canonical(), "Hopper+obs_perturb:0.075+obs_delay:1");
  EXPECT_DOUBLE_EQ(parse("walker2d+obs_noise").channel(
                       ChannelKind::ObsNoise)->param, 0.05);
}

TEST(ScenarioSpec, EpsilonAndBudgetAccessors) {
  EXPECT_DOUBLE_EQ(parse("hopper").epsilon(), 0.075);  // registry fallback
  EXPECT_DOUBLE_EQ(parse("hopper+obs_perturb:0.2").epsilon(), 0.2);
  EXPECT_DOUBLE_EQ(parse("hopper").budget(), 0.0);
  EXPECT_DOUBLE_EQ(
      parse("hopper+obs_perturb:0.1+budget:0.5").budget(), 0.5);
}

TEST(ScenarioSpec, WithDefaultThreatMakesImplicitChannelExplicit) {
  const auto spec = with_default_threat(parse("hopper+obs_delay:2"));
  EXPECT_TRUE(spec.attackable());
  EXPECT_EQ(spec.canonical(), "Hopper+obs_perturb:0.075+obs_delay:2");
  // Already-attackable specs pass through unchanged.
  const auto same = with_default_threat(parse("hopper+act_perturb:0.1"));
  EXPECT_EQ(same.canonical(), "Hopper+act_perturb:0.1");
}

TEST(ScenarioSpec, MalformedSpecsThrowPointedErrors) {
  EXPECT_THROW(parse(""), CheckError);
  EXPECT_THROW(parse("nosuchenv"), CheckError);
  EXPECT_THROW(parse("hopper+nosuchchannel:1"), CheckError);
  EXPECT_THROW(parse("hopper+obs_perturb+obs_perturb:0.1"), CheckError);
  EXPECT_THROW(parse("hopper+obs_dropout"), CheckError);   // no default
  EXPECT_THROW(parse("hopper+budget"), CheckError);        // no default
  EXPECT_THROW(parse("hopper+obs_dropout:1.5"), CheckError);
  EXPECT_THROW(parse("hopper+obs_delay:0"), CheckError);
  EXPECT_THROW(parse("hopper+obs_delay:2.5"), CheckError);
  EXPECT_THROW(parse("hopper+dr[mass:1.2..0.8]"), CheckError);
  EXPECT_THROW(parse("hopper+dr[mass:-1..1]"), CheckError);
  EXPECT_THROW(parse("hopper+dr[spring:0.5..1]"), CheckError);
  EXPECT_THROW(parse("hopper+dr[mass:0.8..1.2,mass:0.9..1.1]"), CheckError);
  // dr[budget] scales perturbation budgets; meaningless without one.
  EXPECT_THROW(parse("hopper+dr[budget:0.5..1]"), CheckError);
  // Channels on a competitive game are not a thing.
  EXPECT_THROW(parse("youshallnotpass+obs_delay:1"), CheckError);
  // Seed ranges belong to expand() patterns, not concrete specs.
  EXPECT_THROW(parse("hopper@1..5"), CheckError);
  EXPECT_THROW(parse("hopper@notanumber"), CheckError);
}

TEST(ScenarioSpec, ExpandAlternationAndSeedRanges) {
  const auto cells = expand("hopper,walker2d+obs_delay:2@1..3");
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].canonical(), "Hopper+obs_delay:2@1");
  EXPECT_EQ(cells[2].canonical(), "Hopper+obs_delay:2@3");
  EXPECT_EQ(cells[5].canonical(), "Walker2d+obs_delay:2@3");

  const auto all = expand("*");
  EXPECT_EQ(all.size(), env::single_agent_specs().size());
  EXPECT_EQ(all[0].canonical(), "Hopper");

  const auto one = expand("hopper+obs_perturb:0.1@5");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].canonical(), "Hopper+obs_perturb:0.1@5");
}

TEST(ChannelPrimitives, ObsPerturbIsTheLegacyLoop) {
  Rng rng(11);
  std::vector<double> obs(8), ctrl(8);
  for (auto& x : obs) x = rng.uniform(-2.0, 2.0);
  for (auto& x : ctrl) x = rng.uniform(-1.0, 1.0);
  auto a = obs, b = obs;
  apply_obs_perturb(a, ctrl.data(), 0.075);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] += 0.075 * ctrl[i];
  EXPECT_EQ(a, b);  // bitwise: identical arithmetic, identical order
}

TEST(ChannelPrimitives, ObsNoiseIsTheLegacyLoop) {
  std::vector<double> obs(8);
  Rng fill(13);
  for (auto& x : obs) x = fill.uniform(-2.0, 2.0);
  auto a = obs, b = obs;
  Rng r1(99), r2(99);
  apply_obs_noise(a, 0.1, r1);
  for (auto& x : b) x += 0.1 * r2.uniform(-1.0, 1.0);
  EXPECT_EQ(a, b);
}

// The obs_perturb-only scenario must be bit-identical to the legacy
// StatePerturbationEnv — same Rng draws, same arithmetic, same rewards —
// so cells that migrate to scenario strings reproduce their history.
TEST(ScenarioEnv, ObsPerturbOnlyMatchesStatePerturbationEnvBitwise) {
  const auto spec = parse("hopper+obs_perturb:0.075");
  ScenarioEnv scen(spec, feedback_victim(), attack::RewardMode::Adversary);
  const auto inner = env::make_hopper();
  attack::StatePerturbationEnv legacy(*inner, feedback_victim(), 0.075,
                                      attack::RewardMode::Adversary);
  EXPECT_EQ(scen.act_dim(), legacy.act_dim());

  Rng r1(21), r2(21), act_rng(5);
  for (int ep = 0; ep < 2; ++ep) {
    auto o1 = scen.reset(r1);
    auto o2 = legacy.reset(r2);
    ASSERT_EQ(o1, o2);
    for (int t = 0; t < 80; ++t) {
      std::vector<double> a(scen.act_dim());
      for (auto& x : a) x = act_rng.uniform(-1.5, 1.5);
      const auto s1 = scen.step(a);
      const auto s2 = legacy.step(a);
      ASSERT_EQ(s1.obs, s2.obs);
      ASSERT_EQ(s1.reward, s2.reward);
      ASSERT_EQ(s1.surrogate, s2.surrogate);
      ASSERT_EQ(s1.done, s2.done);
      ASSERT_EQ(s1.truncated, s2.truncated);
      if (s1.done || s1.truncated) break;
    }
  }
}

// The SplitStepEnv contract, bitwise, for the FULL channel stack: step(a)
// must equal finish_step(victim.query(begin_step(a))) on a twin env.
TEST(ScenarioEnv, SplitStepContractHoldsForAllChannels) {
  const auto spec = parse(
      "hopper+obs_perturb:0.1+act_perturb:0.05+obs_delay:2+obs_dropout:0.3"
      "+obs_noise:0.05+budget:0.5+dr[gain:0.9..1.1,mass:0.8..1.2]@3");
  ScenarioEnv a(spec, feedback_victim(), attack::RewardMode::Adversary);
  ScenarioEnv b(spec, feedback_victim(), attack::RewardMode::Adversary);
  EXPECT_EQ(a.act_dim(), a.obs_dim() + env::make_hopper()->act_dim());

  Rng r1(33), r2(33), act_rng(7);
  for (int ep = 0; ep < 2; ++ep) {
    const auto o1 = a.reset(r1);
    const auto o2 = b.reset(r2);
    ASSERT_EQ(o1, o2);
    for (int t = 0; t < 60; ++t) {
      std::vector<double> act(a.act_dim());
      for (auto& x : act) x = act_rng.uniform(-1.5, 1.5);
      const auto s1 = a.step(act);
      const auto s2 = b.finish_step(b.frozen_policy().query(b.begin_step(act)));
      ASSERT_EQ(s1.obs, s2.obs);
      ASSERT_EQ(s1.reward, s2.reward);
      ASSERT_EQ(s1.surrogate, s2.surrogate);
      ASSERT_EQ(s1.done, s2.done);
      if (s1.done || s1.truncated) break;
    }
  }
}

TEST(ScenarioEnv, SeededDrFamiliesAreDeterministicAndDistinct) {
  const auto run = [](const std::string& text, std::uint64_t slot_seed) {
    ScenarioEnv env(parse(text), feedback_victim(),
                    attack::RewardMode::VictimTrue);
    Rng rng(slot_seed), act_rng(9);
    std::vector<double> trace = env.reset(rng);
    for (int t = 0; t < 40; ++t) {
      std::vector<double> a(env.act_dim());
      for (auto& x : a) x = act_rng.uniform(-1.0, 1.0);
      const auto sr = env.step(a);
      trace.insert(trace.end(), sr.obs.begin(), sr.obs.end());
      trace.push_back(sr.reward);
      if (sr.done || sr.truncated) break;
    }
    return trace;
  };
  const std::string fam1 =
      "hopper+obs_perturb:0.075+dr[gain:0.9..1.1,mass:0.8..1.2]@1";
  const std::string fam2 =
      "hopper+obs_perturb:0.075+dr[gain:0.9..1.1,mass:0.8..1.2]@2";
  // Same spec@seed, same slot stream: bit-identical episodes.
  EXPECT_EQ(run(fam1, 100), run(fam1, 100));
  // Different family seed: different dynamics, different episodes.
  EXPECT_NE(run(fam1, 100), run(fam2, 100));
  // Different slot stream: different episodes within one family.
  EXPECT_NE(run(fam1, 100), run(fam1, 101));
}

TEST(ScenarioEnv, BudgetDepletesThenSilencesThePerturbation) {
  // ε = 0.075 per step against a 0.1 per-episode pool: the first step costs
  // the full ε, the second gets the 0.025 remainder, the third is free-of-
  // charge zero perturbation (the victim sees the true state).
  ScenarioEnv env(parse("hopper+obs_perturb:0.075+budget:0.1"),
                  feedback_victim(), attack::RewardMode::Adversary);
  Rng rng(3);
  env.reset(rng);
  EXPECT_DOUBLE_EQ(env.budget_remaining(), 0.1);
  const std::vector<double> ones(env.act_dim(), 1.0);

  const auto& v1 = env.begin_step(ones);
  std::vector<double> seen1 = v1;
  env.finish_step(env.frozen_policy().query(seen1));
  EXPECT_DOUBLE_EQ(env.budget_remaining(), 0.025);

  const auto cur2 = std::vector<double>(env.begin_step(ones));
  env.finish_step(env.frozen_policy().query(cur2));
  EXPECT_DOUBLE_EQ(env.budget_remaining(), 0.0);

  // Pool empty: begin_step's perturbed view IS the true observation.
  const auto sr_pre = env.step(ones);
  EXPECT_DOUBLE_EQ(env.budget_remaining(), 0.0);
  const auto& v4 = env.begin_step(ones);
  ASSERT_EQ(v4.size(), sr_pre.obs.size());
  EXPECT_EQ(v4, sr_pre.obs);
  env.finish_step(env.frozen_policy().query(v4));

  // Reset refills the pool.
  env.reset(rng);
  EXPECT_DOUBLE_EQ(env.budget_remaining(), 0.1);
}

TEST(ScenarioEnv, UncontrolledScenarioExposesDummyActionDim) {
  ScenarioEnv env(parse("hopper+obs_noise:0.05+obs_delay:2"),
                  feedback_victim(), attack::RewardMode::VictimTrue);
  EXPECT_EQ(env.act_dim(), 1u);  // ignored dummy keeps PPO/eval machinery alive
  EXPECT_EQ(env.budget_remaining(),
            std::numeric_limits<double>::infinity());
  Rng rng(5);
  env.reset(rng);
  const auto sr = env.step({0.0});
  EXPECT_EQ(sr.obs.size(), env.obs_dim());
}

TEST(ScenarioEnv, ObsDelayDeliversStaleObservations) {
  // With an enormous ε-free delay-only scenario, the victim's view at step t
  // is the TRUE observation from step t-k; compare against an undelayed twin.
  ScenarioEnv delayed(parse("hopper+obs_delay:2"), feedback_victim(),
                      attack::RewardMode::VictimTrue);
  const auto plain = env::make_hopper();
  Rng r1(17), r2(17);
  std::vector<std::vector<double>> true_obs;
  true_obs.push_back(plain->reset(r2));
  const auto d0 = delayed.reset(r1);
  EXPECT_EQ(d0, true_obs[0]);  // reset observation is always fresh
  const auto victim = feedback_victim();
  for (int t = 0; t < 6; ++t) {
    // Drive both with the same victim action computed from the TRUE state so
    // the underlying trajectories stay identical.
    const auto act = victim(true_obs.back());
    const auto sp = plain->step(plain->action_space().clamp(act));
    true_obs.push_back(sp.obs);
    delayed.begin_step({0.0});
    const auto sd = delayed.finish_step(act);
    const std::size_t expect_idx =
        t + 1 >= 2 ? static_cast<std::size_t>(t - 1) : 0;
    EXPECT_EQ(sd.obs, true_obs[expect_idx]);
  }
}

TEST(ScenarioEnv, DynamicsRandomizationNeedsEnvSupport) {
  // FetchReach has no mass/gain hooks: naming dr[mass] on it must fault at
  // construction, not silently no-op at reset.
  EXPECT_THROW(ScenarioEnv(parse("fetchreach+obs_perturb:0.1"
                                 "+dr[mass:0.8..1.2]"),
                           feedback_victim(), attack::RewardMode::Adversary),
               CheckError);
  // dr[budget] alone needs no dynamics hook.
  ScenarioEnv ok(parse("hopper+obs_perturb:0.075+dr[budget:0.5..1]"
                       "+budget:0.2"),
                 feedback_victim(), attack::RewardMode::Adversary);
  Rng rng(3);
  ok.reset(rng);
  EXPECT_GE(ok.budget_remaining(), 0.1);
  EXPECT_LE(ok.budget_remaining(), 0.2);
}

TEST(ScenarioEnv, NameIsTheCanonicalScenarioString) {
  ScenarioEnv env(parse("hopper+obs_delay:2+obs_perturb"), feedback_victim(),
                  attack::RewardMode::VictimTrue);
  EXPECT_EQ(env.name(), "Hopper+obs_perturb:0.075+obs_delay:2");
}

}  // namespace
}  // namespace imap::scenario
