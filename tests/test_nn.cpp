#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "nn/adam.h"
#include "nn/checkpoint.h"
#include "nn/gaussian.h"
#include "nn/matrix.h"
#include "nn/mlp.h"

namespace imap::nn {
namespace {

TEST(Matrix, MatvecAndTranspose) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6]
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  const auto y = m.matvec({1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  const auto yt = m.matvec_transposed({1.0, 1.0});
  EXPECT_DOUBLE_EQ(yt[0], 5.0);
  EXPECT_DOUBLE_EQ(yt[1], 7.0);
  EXPECT_DOUBLE_EQ(yt[2], 9.0);
}

TEST(Matrix, AddOuter) {
  Matrix m(2, 2);
  m.add_outer({1.0, 2.0}, {3.0, 4.0}, 0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(VectorOps, Basics) {
  std::vector<double> y{1, 2};
  axpy(y, 2.0, {3, 4});
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(l2norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(linf_norm({-7, 3}), 7.0);
}

// Finite-difference check of the MLP backward pass — the foundation every
// trainer in the library rests on.
TEST(Mlp, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  Mlp net({4, 8, 3}, rng);
  const auto x = rng.normal_vec(4);
  const std::vector<double> w{0.7, -1.3, 0.4};  // loss = w · out

  Mlp::Tape tape;
  net.forward_tape(x, tape);
  net.zero_grad();
  const auto gin = net.backward(tape, w);
  const auto analytic = net.grads();

  auto loss = [&](const std::vector<double>& input) {
    const auto out = net.forward(input);
    double l = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) l += w[i] * out[i];
    return l;
  };

  const double h = 1e-6;
  // Parameter gradients (spot-check a spread of indices).
  for (std::size_t i = 0; i < net.params().size(); i += 7) {
    const double orig = net.params()[i];
    net.params()[i] = orig + h;
    const double lp = loss(x);
    net.params()[i] = orig - h;
    const double lm = loss(x);
    net.params()[i] = orig;
    EXPECT_NEAR(analytic[i], (lp - lm) / (2 * h), 1e-4)
        << "param index " << i;
  }
  // Input gradients.
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    EXPECT_NEAR(gin[i], (loss(xp) - loss(xm)) / (2 * h), 1e-4);
  }
}

TEST(Mlp, InputGradientMatchesBackward) {
  Rng rng(5);
  Mlp net({3, 6, 2}, rng);
  const auto x = rng.normal_vec(3);
  Mlp::Tape tape;
  net.forward_tape(x, tape);
  net.zero_grad();
  const auto g1 = net.backward(tape, {1.0, -2.0});
  const auto g2 = net.input_gradient(tape, {1.0, -2.0});
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_NEAR(g1[i], g2[i], 1e-12);
}

TEST(Mlp, RejectsWrongInputDim) {
  Rng rng(1);
  Mlp net({3, 4, 2}, rng);
  EXPECT_THROW(net.forward({1.0, 2.0}), CheckError);
}

TEST(Adam, MinimizesQuadratic) {
  std::vector<double> p{5.0, -3.0};
  Adam opt(2, {.lr = 0.05, .max_grad_norm = 0.0});
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> g{2.0 * (p[0] - 1.0), 2.0 * (p[1] + 2.0)};
    opt.step(p, g);
  }
  EXPECT_NEAR(p[0], 1.0, 1e-2);
  EXPECT_NEAR(p[1], -2.0, 1e-2);
}

TEST(Adam, ClipsGlobalNorm) {
  std::vector<double> p{0.0};
  Adam opt(1, {.lr = 1.0, .max_grad_norm = 0.5});
  opt.step(p, {1e9});
  // With clipping the first Adam step is ≈ −lr regardless of magnitude, and
  // never catastrophically large.
  EXPECT_LT(std::abs(p[0]), 2.0);
}

TEST(DiagGaussian, LogProbMatchesClosedForm) {
  // 1-D standard normal at 0: log(1/sqrt(2π)).
  EXPECT_NEAR(diag_gaussian::log_prob({0.0}, {0.0}, {0.0}),
              -0.5 * std::log(2 * M_PI), 1e-12);
  // Scaling: N(0, e²) at x=e has logp = -0.5 - 1 - 0.5 ln 2π.
  EXPECT_NEAR(diag_gaussian::log_prob({std::exp(1.0)}, {0.0}, {1.0}),
              -0.5 - 1.0 - 0.5 * std::log(2 * M_PI), 1e-12);
}

TEST(DiagGaussian, EntropyAndKl) {
  EXPECT_NEAR(diag_gaussian::entropy({0.0}),
              0.5 * std::log(2 * M_PI * std::exp(1.0)), 1e-12);
  // KL(p‖p) = 0.
  EXPECT_NEAR(diag_gaussian::kl({1.0, 2.0}, {0.1, -0.2}, {1.0, 2.0},
                                {0.1, -0.2}),
              0.0, 1e-12);
  // KL between unit Gaussians with mean shift δ is δ²/2.
  EXPECT_NEAR(diag_gaussian::kl({1.0}, {0.0}, {0.0}, {0.0}), 0.5, 1e-12);
  EXPECT_GT(diag_gaussian::kl({0.0}, {1.0}, {0.0}, {0.0}), 0.0);
}

TEST(DiagGaussian, LogProbGradientsMatchFiniteDifferences) {
  const std::vector<double> a{0.3, -1.1}, mean{0.1, 0.4}, ls{-0.2, 0.5};
  const auto gm = diag_gaussian::dlogp_dmean(a, mean, ls);
  const auto gs = diag_gaussian::dlogp_dlogstd(a, mean, ls);
  const double h = 1e-6;
  for (std::size_t i = 0; i < 2; ++i) {
    auto mp = mean, mm = mean;
    mp[i] += h;
    mm[i] -= h;
    EXPECT_NEAR(gm[i],
                (diag_gaussian::log_prob(a, mp, ls) -
                 diag_gaussian::log_prob(a, mm, ls)) /
                    (2 * h),
                1e-6);
    auto lp = ls, lm = ls;
    lp[i] += h;
    lm[i] -= h;
    EXPECT_NEAR(gs[i],
                (diag_gaussian::log_prob(a, mean, lp) -
                 diag_gaussian::log_prob(a, mean, lm)) /
                    (2 * h),
                1e-6);
  }
}

TEST(GaussianPolicy, SampleStatisticsMatchParameters) {
  Rng rng(9);
  GaussianPolicy pi(3, 2, {16}, rng, /*init_log_std=*/-0.5);
  const auto obs = rng.normal_vec(3);
  const auto mu = pi.mean_action(obs);
  std::vector<double> acc(2, 0.0), acc2(2, 0.0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto a = pi.act(obs, rng);
    for (int d = 0; d < 2; ++d) {
      acc[d] += a[d];
      acc2[d] += (a[d] - mu[d]) * (a[d] - mu[d]);
    }
  }
  for (int d = 0; d < 2; ++d) {
    EXPECT_NEAR(acc[d] / n, mu[d], 0.02);
    EXPECT_NEAR(std::sqrt(acc2[d] / n), std::exp(-0.5), 0.02);
  }
}

TEST(GaussianPolicy, BackwardLogpMatchesFiniteDifferences) {
  Rng rng(13);
  GaussianPolicy pi(3, 2, {8}, rng);
  const auto obs = rng.normal_vec(3);
  const auto act = rng.normal_vec(2);

  Mlp::Tape tape;
  pi.mean_tape(obs, tape);
  pi.zero_grad();
  pi.backward_logp(tape, act, 1.0);
  const auto analytic = pi.flat_grads();

  auto params = pi.flat_params();
  const double h = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 5) {
    auto p = params;
    p[i] += h;
    pi.set_flat_params(p);
    const double lp = pi.log_prob(obs, act);
    p[i] = params[i] - h;
    pi.set_flat_params(p);
    const double lm = pi.log_prob(obs, act);
    pi.set_flat_params(params);
    EXPECT_NEAR(analytic[i], (lp - lm) / (2 * h), 1e-4) << "param " << i;
  }
}

TEST(GaussianPolicy, ClampLogStd) {
  Rng rng(1);
  GaussianPolicy pi(2, 2, {4}, rng, /*init_log_std=*/5.0);
  pi.clamp_log_std(-3.0, 1.0);
  for (const double ls : pi.log_std()) EXPECT_LE(ls, 1.0);
}

TEST(ValueNet, BackwardMatchesFiniteDifferences) {
  Rng rng(17);
  ValueNet v(4, {8}, rng);
  const auto obs = rng.normal_vec(4);
  Mlp::Tape tape;
  v.value_tape(obs, tape);
  v.zero_grad();
  v.backward(tape, 1.0);
  const auto analytic = v.grads();
  const double h = 1e-6;
  for (std::size_t i = 0; i < v.params().size(); i += 3) {
    const double orig = v.params()[i];
    v.params()[i] = orig + h;
    const double vp = v.value(obs);
    v.params()[i] = orig - h;
    const double vm = v.value(obs);
    v.params()[i] = orig;
    EXPECT_NEAR(analytic[i], (vp - vm) / (2 * h), 1e-4);
  }
}

TEST(Checkpoint, PolicyRoundTrip) {
  Rng rng(21);
  GaussianPolicy pi(5, 3, {16, 16}, rng);
  const std::string path = "/tmp/imap_test_policy.pol";
  ASSERT_TRUE(save_policy(path, pi));
  const auto loaded = load_policy(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->obs_dim(), 5u);
  EXPECT_EQ(loaded->act_dim(), 3u);
  const auto obs = rng.normal_vec(5);
  EXPECT_EQ(loaded->mean_action(obs), pi.mean_action(obs));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingPolicyIsNullopt) {
  EXPECT_FALSE(load_policy("/tmp/not_a_policy_anywhere.pol").has_value());
}

TEST(Checkpoint, ValueNetRoundTrip) {
  Rng rng(23);
  ValueNet v(4, {8}, rng);
  BinaryWriter w;
  write_value_net(w, v);
  BinaryReader r(std::vector<std::uint8_t>(w.buffer()));
  const auto v2 = read_value_net(r);
  const auto obs = rng.normal_vec(4);
  EXPECT_DOUBLE_EQ(v2.value(obs), v.value(obs));
}

}  // namespace
}  // namespace imap::nn
