// Numeric-guard layer, disabled path: with IMAP_CHECK_NUMERICS undefined the
// IMAP_NCHECK_* macros must be true no-ops — no throw on bad values and no
// evaluation of their arguments (zero cost in release builds). The symbol is
// forced off for this TU so the test holds even under -DIMAP_CHECK_NUMERICS=ON.
#undef IMAP_CHECK_NUMERICS

#include "common/check.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace imap {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// [[maybe_unused]] because the disabled guards genuinely never reference it —
// which is exactly the property ArgumentsAreNotEvaluated asserts.
[[maybe_unused]] double poison(int& calls) {
  ++calls;
  return kNan;
}

TEST(NumericGuardDisabled, BadValuesPassSilently) {
  const std::vector<double> v{kNan, std::numeric_limits<double>::infinity()};
  EXPECT_NO_THROW(IMAP_NCHECK_FINITE(kNan, "loss"));
  EXPECT_NO_THROW(IMAP_NCHECK_FINITE_VEC(v, "advantages"));
  EXPECT_NO_THROW(IMAP_NCHECK_SHAPE(v.size(), 99, "obs"));
  EXPECT_NO_THROW(IMAP_NCHECK_BOUNDS(kNan, 0.0, 1.0, "gamma"));
}

TEST(NumericGuardDisabled, ArgumentsAreNotEvaluated) {
  int calls = 0;
  IMAP_NCHECK_FINITE(poison(calls), "x");
  IMAP_NCHECK_BOUNDS(poison(calls), 0.0, 1.0, "x");
  EXPECT_EQ(calls, 0) << "disabled guards must not evaluate their arguments";
}

TEST(NumericGuardDisabled, AlwaysOnChecksStillFire) {
  // IMAP_CHECK is independent of the numerics toggle — contracts stay on.
  EXPECT_THROW(IMAP_CHECK(false), CheckError);
}

}  // namespace
}  // namespace imap
