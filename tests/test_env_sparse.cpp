#include <gtest/gtest.h>

#include "env/hopper.h"
#include "env/humanoid.h"
#include "env/sparse.h"

namespace imap::env {
namespace {

// A sparse env around a noise-free hopper so outcomes are scripted.
SparseLocomotionEnv make_test_sparse(double goal, int max_steps) {
  LocomotorParams p = hopper_params();
  p.posture_noise = 0.0;
  p.init_noise = 0.0;
  return SparseLocomotionEnv(p, goal, max_steps);
}

// Thrust with posture feedback — reliably runs forward.
std::vector<double> runner_action(const std::vector<double>& obs) {
  const auto p = hopper_params();
  const double theta = obs[0], omega = obs[1];
  std::vector<double> u(p.n_joints);
  for (std::size_t j = 0; j < p.n_joints; ++j)
    u[j] = 0.3 * p.c[j] - 3.0 * (theta + 0.4 * omega) * p.d[j];
  return u;
}

TEST(SparseLocomotion, SuccessRewardIncludesTimePenalty) {
  auto env = make_test_sparse(2.0, 300);
  Rng rng(3);
  auto obs = env.reset(rng);
  double final_reward = 0.0;
  int t = 0;
  bool completed = false;
  while (true) {
    const auto sr = env.step(runner_action(obs));
    ++t;
    if (sr.done || sr.truncated) {
      final_reward = sr.reward;
      completed = sr.task_completed;
      EXPECT_DOUBLE_EQ(sr.surrogate, completed ? 1.0 : 0.0);
      break;
    }
    EXPECT_DOUBLE_EQ(sr.reward, 0.0);    // zero reward before the goal
    EXPECT_DOUBLE_EQ(sr.surrogate, 0.0); // r̂ fires only at the crossing
    obs = sr.obs;
  }
  ASSERT_TRUE(completed);
  EXPECT_NEAR(final_reward, 1.0 - 0.05 * static_cast<double>(t) / 300, 1e-12);
  EXPECT_GT(final_reward, 0.9);
}

TEST(SparseLocomotion, TimeoutGivesZero) {
  auto env = make_test_sparse(1e6, 50);  // unreachable goal
  Rng rng(3);
  auto obs = env.reset(rng);
  for (int i = 0; i < 49; ++i) obs = env.step(runner_action(obs)).obs;
  const auto sr = env.step(runner_action(obs));
  EXPECT_TRUE(sr.truncated);
  EXPECT_FALSE(sr.done);
  EXPECT_DOUBLE_EQ(sr.reward, 0.0);
  EXPECT_FALSE(sr.task_completed);
}

TEST(SparseLocomotion, FallGivesPenalty) {
  auto env = make_test_sparse(1e6, 300);
  Rng rng(3);
  env.reset(rng);
  // Full thrust destabilises via the speed-dependent instability.
  rl::StepResult last;
  for (int i = 0; i < 300; ++i) {
    last = env.step({1.0, 1.0, 1.0});
    if (last.done) break;
  }
  ASSERT_TRUE(last.done);
  EXPECT_TRUE(last.fell);
  EXPECT_DOUBLE_EQ(last.reward, -0.05);
}

TEST(SparseLocomotion, NamesAndFactories) {
  EXPECT_EQ(make_sparse_hopper()->name(), "SparseHopper");
  EXPECT_EQ(make_sparse_walker2d()->name(), "SparseWalker2d");
  EXPECT_EQ(make_sparse_half_cheetah()->name(), "SparseHalfCheetah");
  EXPECT_EQ(make_sparse_ant()->name(), "SparseAnt");
  EXPECT_EQ(make_sparse_humanoid()->name(), "SparseHumanoid");
  EXPECT_EQ(make_sparse_humanoid_standup()->name(), "SparseHumanoidStandup");
}

TEST(HumanoidStandup, StandsWithStrongLift) {
  HumanoidStandupEnv env(HumanoidStandupEnv::Mode::Sparse);
  Rng rng(3);
  auto obs = env.reset(rng);
  EXPECT_LT(env.height(), 0.3);
  bool stood = false;
  for (int i = 0; i < 300; ++i) {
    // Lift with posture feedback (kPosture = {0.5,-0.35,0.25,-0.15}).
    const double theta = obs[2], omega = obs[3];
    const double fb = -3.0 * (theta + 0.4 * omega);
    const std::vector<double> u{0.6 + 0.5 * fb, 0.6 - 0.35 * fb,
                                0.6 + 0.25 * fb, 0.6 - 0.15 * fb};
    const auto sr = env.step(u);
    if (sr.task_completed) {
      stood = true;
      EXPECT_GT(sr.reward, 0.8);
      EXPECT_TRUE(sr.done);
      break;
    }
    obs = sr.obs;
  }
  EXPECT_TRUE(stood);
}

TEST(HumanoidStandup, ZeroActionNeverStands) {
  HumanoidStandupEnv env(HumanoidStandupEnv::Mode::Sparse);
  Rng rng(3);
  env.reset(rng);
  const std::vector<double> zero(4, 0.0);
  for (int i = 0; i < 300; ++i) {
    const auto sr = env.step(zero);
    EXPECT_FALSE(sr.task_completed);
    if (sr.done || sr.truncated) break;
  }
  EXPECT_LT(env.height(), 0.5);
}

TEST(HumanoidStandup, DenseModeShapesHeight) {
  HumanoidStandupEnv env(HumanoidStandupEnv::Mode::Dense);
  Rng rng(3);
  env.reset(rng);
  const auto low = env.step({0.0, 0.0, 0.0, 0.0});
  EXPECT_GT(low.reward, 0.0);  // height term + alive
  EXPECT_LT(low.reward, 1.5);
}

}  // namespace
}  // namespace imap::env
