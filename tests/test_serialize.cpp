// Archive container format (magic / version / sections / CRC trailer) and
// the save_state/load_state round-trip contract of every stateful component.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/bias_reduction.h"
#include "core/knn.h"
#include "nn/adam.h"
#include "nn/checkpoint.h"
#include "nn/gaussian.h"
#include "nn/mlp.h"
#include "rl/normalizer.h"
#include "temp_dir.h"

namespace imap {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::unique_temp_dir("imap_test_serialize");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  static std::vector<std::uint8_t> slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static void spit(const std::string& p, const std::vector<std::uint8_t>& b) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(b.data()),
              static_cast<std::streamsize>(b.size()));
  }

  std::string dir_;
};

TEST_F(SerializeTest, ArchiveMultiSectionRoundTrip) {
  ArchiveWriter w;
  w.section("alpha").write_i64(-7);
  w.section("beta/gamma").write_string("hello");
  w.section("alpha").write_f64(2.5);  // repeated name appends
  ASSERT_TRUE(w.save(path("a.snap")));

  ArchiveReader a;
  ASSERT_TRUE(ArchiveReader::load(path("a.snap"), a));
  EXPECT_EQ(a.version(), kFormatVersion);
  EXPECT_EQ(a.section_names(),
            (std::vector<std::string>{"alpha", "beta/gamma"}));
  EXPECT_TRUE(a.has("alpha"));
  EXPECT_FALSE(a.has("delta"));

  auto alpha = a.section("alpha");
  EXPECT_EQ(alpha.read_i64(), -7);
  EXPECT_EQ(alpha.read_f64(), 2.5);
  EXPECT_TRUE(alpha.exhausted());
  auto bg = a.section("beta/gamma");
  EXPECT_EQ(bg.read_string(), "hello");
}

TEST_F(SerializeTest, ArchiveSkipsUnknownSections) {
  // A reader only ever asks for the sections it knows — extra sections from
  // a newer writer (same format version) are simply never touched.
  ArchiveWriter w;
  w.section("known").write_u64(1);
  w.section("future/extension").write_vec({1.0, 2.0, 3.0});
  ASSERT_TRUE(w.save(path("f.snap")));

  ArchiveReader a;
  ASSERT_TRUE(ArchiveReader::load(path("f.snap"), a));
  auto known = a.section("known");
  EXPECT_EQ(known.read_u64(), 1u);
}

TEST_F(SerializeTest, ArchiveMissingFileAndMissingSection) {
  ArchiveReader a;
  EXPECT_FALSE(ArchiveReader::load(path("nope.snap"), a));

  ArchiveWriter w;
  w.section("only").write_u64(0);
  ASSERT_TRUE(w.save(path("o.snap")));
  ASSERT_TRUE(ArchiveReader::load(path("o.snap"), a));
  EXPECT_THROW(a.section("absent"), CheckError);
}

TEST_F(SerializeTest, ArchiveRejectsBitFlip) {
  ArchiveWriter w;
  w.section("payload").write_vec(std::vector<double>(64, 1.25));
  ASSERT_TRUE(w.save(path("c.snap")));

  auto bytes = slurp(path("c.snap"));
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] ^= 0x01;  // single flipped bit anywhere
  spit(path("c.snap"), bytes);

  ArchiveReader a;
  EXPECT_THROW(ArchiveReader::load(path("c.snap"), a), CheckError);
}

TEST_F(SerializeTest, ArchiveRejectsTruncation) {
  ArchiveWriter w;
  w.section("payload").write_vec(std::vector<double>(64, 1.25));
  ASSERT_TRUE(w.save(path("t.snap")));

  auto bytes = slurp(path("t.snap"));
  bytes.resize(bytes.size() - 3);  // torn tail
  spit(path("t.snap"), bytes);

  ArchiveReader a;
  EXPECT_THROW(ArchiveReader::load(path("t.snap"), a), CheckError);
}

TEST_F(SerializeTest, ArchiveRejectsOldFormatVersion) {
  // Fabricate a structurally valid v1 archive: magic | version 1 | zero
  // sections | correct CRC. Every loader must refuse it with a CheckError —
  // never a silent misread of old zoo/cache artifacts.
  std::vector<std::uint8_t> bytes{'I', 'M', 'A', 'P'};
  auto put_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u64(1);  // old format version
  put_u64(0);  // no sections
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  spit(path("old.pol"), bytes);

  ArchiveReader a;
  EXPECT_THROW(ArchiveReader::load(path("old.pol"), a), CheckError);
  // The zoo loads policies through this path: an old-format checkpoint file
  // surfaces as a clear error, not a garbage network.
  EXPECT_THROW(nn::load_policy(path("old.pol")), CheckError);
}

TEST_F(SerializeTest, AtomicSaveLeavesNoTempFile) {
  ArchiveWriter w;
  w.section("s").write_u64(9);
  ASSERT_TRUE(w.save(path("atomic.snap")));
  EXPECT_TRUE(std::filesystem::exists(path("atomic.snap")));
  EXPECT_FALSE(std::filesystem::exists(path("atomic.snap") + ".tmp"));

  // Unwritable destination: reports failure, leaves nothing behind.
  const std::string bad = dir_ + "/no_such_dir/x.snap";
  EXPECT_FALSE(w.save(bad));
  EXPECT_FALSE(std::filesystem::exists(bad));
  EXPECT_FALSE(std::filesystem::exists(bad + ".tmp"));
}

TEST_F(SerializeTest, BinaryWriterSaveIsASingleSectionArchive) {
  BinaryWriter w;
  w.write_u64(123);
  ASSERT_TRUE(w.save(path("legacy.pol")));

  ArchiveReader a;
  ASSERT_TRUE(ArchiveReader::load(path("legacy.pol"), a));
  EXPECT_EQ(a.section_names(), std::vector<std::string>{"data"});
  auto data = a.section("data");
  EXPECT_EQ(data.read_u64(), 123u);
}

TEST_F(SerializeTest, RngRoundTripContinuesStream) {
  Rng original(42);
  for (int i = 0; i < 100; ++i) original.uniform();

  BinaryWriter w;
  original.save_state(w);
  BinaryReader r(w.buffer());
  Rng restored(0);
  restored.load_state(r);

  EXPECT_EQ(restored.seed(), original.seed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.next_u64(), original.next_u64()) << "draw " << i;
  }
  // split depends only on the seed, so derived streams also agree.
  EXPECT_EQ(restored.split(5).next_u64(), original.split(5).next_u64());
}

TEST_F(SerializeTest, MlpAndAdamRoundTripResumeIdentically) {
  Rng rng(3);
  nn::Mlp net({4, 8, 2}, rng);
  nn::Adam opt(net.params().size());

  // A few updates to give the moments non-trivial state.
  std::vector<double> grads(net.params().size(), 0.01);
  for (int i = 0; i < 3; ++i) opt.step(net.params(), grads);

  BinaryWriter w;
  net.save_state(w);
  opt.save_state(w);

  Rng rng2(99);  // different init: every weight overwritten by load
  nn::Mlp net2({4, 8, 2}, rng2);
  nn::Adam opt2(net2.params().size());
  BinaryReader r(w.buffer());
  net2.load_state(r);
  opt2.load_state(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(net2.params(), net.params());
  // The next update sequence must be bit-identical.
  for (int i = 0; i < 3; ++i) {
    opt.step(net.params(), grads);
    opt2.step(net2.params(), grads);
  }
  EXPECT_EQ(net2.params(), net.params());
  EXPECT_EQ(opt2.iterations(), opt.iterations());
}

TEST_F(SerializeTest, MlpRejectsArchitectureMismatch) {
  Rng rng(3);
  nn::Mlp net({4, 8, 2}, rng);
  BinaryWriter w;
  net.save_state(w);

  nn::Mlp other({4, 6, 2}, rng);
  BinaryReader r(w.buffer());
  EXPECT_THROW(other.load_state(r), CheckError);

  nn::Adam opt(5);
  BinaryWriter wo;
  opt.save_state(wo);
  nn::Adam opt2(6);
  BinaryReader ro(wo.buffer());
  EXPECT_THROW(opt2.load_state(ro), CheckError);
}

TEST_F(SerializeTest, GaussianPolicyRoundTrip) {
  Rng rng(11);
  nn::GaussianPolicy p(4, 2, {8}, rng);
  p.clamp_log_std(-1.0, -1.0);  // distinctive log_std

  BinaryWriter w;
  p.save_state(w);
  Rng rng2(12);
  nn::GaussianPolicy q(4, 2, {8}, rng2);
  BinaryReader r(w.buffer());
  q.load_state(r);

  EXPECT_EQ(q.flat_params(), p.flat_params());
  EXPECT_EQ(q.log_std(), p.log_std());
}

TEST_F(SerializeTest, VecNormalizerRoundTrip) {
  Rng rng(5);
  rl::VecNormalizer norm(3);
  for (int i = 0; i < 50; ++i) norm.update(rng.normal_vec(3, 1.0, 2.0));

  BinaryWriter w;
  norm.save_state(w);
  rl::VecNormalizer restored(3);
  BinaryReader r(w.buffer());
  restored.load_state(r);

  const auto x = rng.normal_vec(3, 0.0, 1.0);
  EXPECT_EQ(restored.normalize(x), norm.normalize(x));
  EXPECT_EQ(restored.count(), norm.count());

  rl::VecNormalizer wrong(4);
  BinaryReader r2(w.buffer());
  EXPECT_THROW(wrong.load_state(r2), CheckError);
}

TEST_F(SerializeTest, ScalarScalerRoundTrip) {
  rl::ScalarScaler s;
  for (int i = 0; i < 20; ++i) s.update(0.5 * i);
  BinaryWriter w;
  s.save_state(w);
  rl::ScalarScaler restored;
  BinaryReader r(w.buffer());
  restored.load_state(r);
  EXPECT_EQ(restored.stddev(), s.stddev());
  EXPECT_EQ(restored.scale(3.0), s.scale(3.0));
}

TEST_F(SerializeTest, KnnBufferRoundTripContinuesReservoir) {
  Rng rng(7);
  core::KnnBuffer knn(3, 16, 2, Rng(13));
  // Overfill so the reservoir-sampling counters matter.
  for (int i = 0; i < 40; ++i) knn.add(rng.normal_vec(3));

  BinaryWriter w;
  knn.save_state(w);
  core::KnnBuffer restored(3, 16, 2, Rng(0));
  BinaryReader r(w.buffer());
  restored.load_state(r);

  const auto q = rng.normal_vec(3);
  EXPECT_EQ(restored.knn_distance(q), knn.knn_distance(q));
  EXPECT_EQ(restored.total_added(), knn.total_added());

  // Continued adds follow the exact same reservoir replacement sequence.
  Rng feed_a(21), feed_b(21);
  for (int i = 0; i < 40; ++i) {
    knn.add(feed_a.normal_vec(3));
    restored.add(feed_b.normal_vec(3));
  }
  EXPECT_EQ(restored.knn_distance(q), knn.knn_distance(q));

  core::KnnBuffer wrong(4, 16, 2, Rng(0));
  BinaryReader r2(w.buffer());
  EXPECT_THROW(wrong.load_state(r2), CheckError);
}

TEST_F(SerializeTest, BiasReductionRoundTripContinuesDual) {
  core::BiasReduction br(true, 5.0, 1.0);
  for (int i = 0; i < 5; ++i) br.observe(0.1 * i);

  BinaryWriter w;
  br.save_state(w);
  core::BiasReduction restored(true, 5.0, 1.0);
  BinaryReader r(w.buffer());
  restored.load_state(r);

  EXPECT_EQ(restored.tau(), br.tau());
  br.observe(0.9);
  restored.observe(0.9);
  EXPECT_EQ(restored.tau(), br.tau());
}

}  // namespace
}  // namespace imap
