#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "env/ant.h"
#include "env/half_cheetah.h"
#include "env/hopper.h"
#include "env/locomotor.h"
#include "env/walker2d.h"

namespace imap::env {
namespace {

TEST(Locomotor, ObservationDimsMatchPaper) {
  // Hopper and Walker2d match the MuJoCo observation widths cited in
  // Table 1 (11-D and 17-D).
  EXPECT_EQ(make_hopper()->obs_dim(), 11u);
  EXPECT_EQ(make_walker2d()->obs_dim(), 17u);
  EXPECT_EQ(make_half_cheetah()->obs_dim(), 15u);
  EXPECT_EQ(make_ant()->obs_dim(), 19u);
}

TEST(Locomotor, ActionDims) {
  EXPECT_EQ(make_hopper()->act_dim(), 3u);
  EXPECT_EQ(make_walker2d()->act_dim(), 6u);
  EXPECT_EQ(make_ant()->act_dim(), 8u);
}

TEST(Locomotor, ResetIsNearCanonicalInitialState) {
  auto env = make_hopper();
  Rng rng(3);
  const auto obs = env->reset(rng);
  ASSERT_EQ(obs.size(), env->obs_dim());
  for (const double x : obs) EXPECT_LT(std::abs(x), 0.3);
}

TEST(Locomotor, DeterministicUnderSameSeed) {
  auto a = make_walker2d();
  auto b = make_walker2d();
  Rng ra(5), rb(5);
  auto oa = a->reset(ra);
  auto ob = b->reset(rb);
  EXPECT_EQ(oa, ob);
  const std::vector<double> act(a->act_dim(), 0.3);
  for (int i = 0; i < 20; ++i) {
    const auto sa = a->step(act);
    const auto sb = b->step(act);
    EXPECT_EQ(sa.obs, sb.obs);
    EXPECT_DOUBLE_EQ(sa.reward, sb.reward);
  }
}

TEST(Locomotor, CloneReproducesState) {
  auto env = make_hopper();
  Rng rng(7);
  env->reset(rng);
  const std::vector<double> act{0.5, -0.2, 0.1};
  for (int i = 0; i < 10; ++i) env->step(act);
  auto copy = env->clone();
  const auto s1 = env->step(act);
  const auto s2 = copy->step(act);
  EXPECT_EQ(s1.obs, s2.obs);
}

TEST(Locomotor, ThrustAccelerates) {
  LocomotorParams p = hopper_params();
  p.posture_noise = 0.0;
  LocomotorEnv env(p);
  Rng rng(3);
  env.reset(rng);
  // Push along the thrust direction c (posture-neutral is not needed for a
  // few steps with zero noise and near-zero θ).
  std::vector<double> u{1.0, 0.7, 0.4};
  for (int i = 0; i < 5; ++i) env.step(u);
  EXPECT_GT(env.forward_velocity(), 0.3);
  EXPECT_GT(env.forward_position(), 0.0);
}

TEST(Locomotor, UnstablePostureDivergesWithoutControl) {
  LocomotorParams p = hopper_params();
  p.posture_noise = 0.0;
  p.init_noise = 0.0;
  LocomotorEnv env(p);
  Rng rng(3);
  env.reset(rng);
  // A pure-thrust policy drives speed up; the speed-dependent instability
  // must then blow up the posture and terminate the episode.
  const std::vector<double> u{1.0, 1.0, 1.0};  // thrust + posture coupling
  bool fell = false;
  for (int i = 0; i < 500; ++i) {
    const auto sr = env.step(u);
    if (sr.done) {
      fell = sr.fell;
      break;
    }
  }
  EXPECT_TRUE(fell);
}

TEST(Locomotor, FeedbackStabilizes) {
  LocomotorParams p = hopper_params();
  LocomotorEnv env(p);
  Rng rng(11);
  auto obs = env.reset(rng);
  // Hand-built controller: moderate thrust + posture feedback through d.
  int survived = 0;
  for (int i = 0; i < 500; ++i) {
    const double theta = obs[0], omega = obs[1];
    std::vector<double> u(p.n_joints);
    for (std::size_t j = 0; j < p.n_joints; ++j)
      u[j] = 0.25 * p.c[j] - 3.0 * (theta + 0.4 * omega) * p.d[j];
    const auto sr = env.step(u);
    ++survived;
    if (sr.done) break;
    obs = sr.obs;
  }
  EXPECT_EQ(survived, 500);
}

TEST(Locomotor, SurrogateIsSpeedFractionAndBlackBoxSafe) {
  LocomotorParams p = hopper_params();
  p.posture_noise = 0.0;
  LocomotorEnv env(p);
  Rng rng(3);
  env.reset(rng);
  const auto sr = env.step({0.0, 0.0, 0.0});
  // Near-zero speed ⇒ near-zero surrogate; always within [0, 1].
  EXPECT_GE(sr.surrogate, 0.0);
  EXPECT_LE(sr.surrogate, 1.0);
}

TEST(Locomotor, HalfCheetahNeverTerminates) {
  auto env = make_half_cheetah();
  Rng rng(3);
  env->reset(rng);
  Rng arng(5);
  for (int i = 0; i < 500; ++i) {
    const auto sr = env->step(arng.uniform_vec(6, -1.0, 1.0));
    EXPECT_FALSE(sr.done);
    if (i < 499)
      EXPECT_FALSE(sr.truncated);
    else
      EXPECT_TRUE(sr.truncated);
  }
}

TEST(Locomotor, TrainingCheetahTerminates) {
  // The victim-training variant restores the fall signal (see
  // half_cheetah.h for why).
  const auto p = half_cheetah_training_params();
  EXPECT_TRUE(p.terminates);
  EXPECT_GT(p.alive_bonus, 0.0);
  // Same deployment dynamics otherwise.
  const auto q = half_cheetah_params();
  EXPECT_EQ(p.c, q.c);
  EXPECT_EQ(p.d, q.d);
  EXPECT_EQ(p.instab, q.instab);
}

TEST(Locomotor, RewardDecomposition) {
  LocomotorParams p = walker2d_params();
  p.posture_noise = 0.0;
  p.init_noise = 0.0;
  LocomotorEnv env(p);
  Rng rng(3);
  env.reset(rng);
  const std::vector<double> zero(p.n_joints, 0.0);
  const auto sr = env.step(zero);
  // Zero action from rest: reward ≈ alive bonus (v ≈ 0, no control cost).
  EXPECT_NEAR(sr.reward, p.alive_bonus, 0.05);
}

TEST(Locomotor, RejectsWrongActionWidth) {
  auto env = make_hopper();
  Rng rng(3);
  env->reset(rng);
  EXPECT_THROW(env->step({0.0}), CheckError);
}

TEST(Locomotor, ApplyDynamicsScalesFromPristineBase) {
  auto env = make_hopper();
  // The scenario layer's DR hook: thrust authority scales by gain/mass, the
  // destabilizing coupling by gain — always from the PRISTINE construction
  // params, so repeated per-episode draws never compound.
  ASSERT_TRUE(env->apply_dynamics(rl::DynamicsScales{2.0, 1.0}));
  ASSERT_TRUE(env->apply_dynamics(rl::DynamicsScales{2.0, 1.0}));
  auto heavy_env = make_hopper();
  ASSERT_TRUE(heavy_env->apply_dynamics(rl::DynamicsScales{2.0, 1.0}));
  // One application == two applications of the same scales (no compounding):
  // identical rollouts from identical Rng streams.
  Rng a(9), b(9);
  auto o1 = env->reset(a);
  auto o2 = heavy_env->reset(b);
  EXPECT_EQ(o1, o2);
  const std::vector<double> u(hopper_params().n_joints, 0.5);
  for (int t = 0; t < 25; ++t) {
    const auto s1 = env->step(u);
    const auto s2 = heavy_env->step(u);
    EXPECT_EQ(s1.obs, s2.obs) << "t=" << t;
    EXPECT_EQ(s1.reward, s2.reward) << "t=" << t;
  }
  // Restoring 1/1 restores the stock dynamics exactly.
  ASSERT_TRUE(env->apply_dynamics(rl::DynamicsScales{}));
  auto stock = make_hopper();
  Rng c(9), d(9);
  EXPECT_EQ(env->reset(c), stock->reset(d));
  const auto s1 = env->step(u);
  const auto s2 = stock->step(u);
  EXPECT_EQ(s1.obs, s2.obs);
  // Non-positive scales are rejected loudly.
  EXPECT_THROW(env->apply_dynamics(rl::DynamicsScales{0.0, 1.0}), CheckError);
}

TEST(Locomotor, PointOfNoReturnExistsAtSpeed) {
  // Analytic property the attack relies on: at the vanilla victim's cruising
  // speed, ‖d‖₁ / instab_eff < θ_max, i.e. there is an irrecoverable
  // posture band below the termination threshold.
  for (const auto& p : {hopper_params(), walker2d_params()}) {
    double d1 = 0.0;
    for (double d : p.d) d1 += std::abs(d);
    const double v_fast = 4.5;
    const double instab_eff = p.instab + p.instab_v * v_fast;
    EXPECT_LT(d1 / instab_eff, p.theta_max) << p.name;
  }
}

}  // namespace
}  // namespace imap::env
