#include <gtest/gtest.h>

#include <cmath>

#include "phys/body.h"
#include "phys/vec2.h"
#include "phys/world.h"

namespace imap::phys {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a - b).y, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ(Vec2(3, 4).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_DOUBLE_EQ(Vec2{}.normalized().norm(), 0.0);
  const auto n = Vec2{0, 5}.normalized();
  EXPECT_DOUBLE_EQ(n.y, 1.0);
}

TEST(Vec2, Rotation) {
  const auto r = Vec2{1, 0}.rotated(M_PI / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  const auto p = Vec2{1, 0}.perp();
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.y, 1.0);
}

TEST(Vec2, ClosestPointOnSegment) {
  const Vec2 a{0, 0}, b{10, 0};
  EXPECT_DOUBLE_EQ(closest_point_on_segment({5, 3}, a, b).x, 5.0);
  EXPECT_DOUBLE_EQ(closest_point_on_segment({-5, 3}, a, b).x, 0.0);  // clamp
  EXPECT_DOUBLE_EQ(closest_point_on_segment({15, 3}, a, b).x, 10.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(closest_point_on_segment({1, 1}, a, a).x, 0.0);
}

TEST(Body, IntegrationWithDamping) {
  CircleBody b;
  b.damping = 0.0;
  b.apply_force({2.0, 0.0});
  b.integrate(0.5);
  EXPECT_DOUBLE_EQ(b.vel.x, 1.0);
  EXPECT_DOUBLE_EQ(b.pos.x, 0.5);
  EXPECT_DOUBLE_EQ(b.force.x, 0.0);  // force cleared

  CircleBody damped;
  damped.damping = 2.0;
  damped.vel = {10.0, 0.0};
  damped.integrate(0.1);
  EXPECT_NEAR(damped.vel.x, 8.0, 1e-12);
}

TEST(Body, TerminalVelocityBounded) {
  CircleBody b;
  b.damping = 2.0;
  for (int i = 0; i < 2000; ++i) {
    b.apply_force({10.0, 0.0});
    b.integrate(0.05);
  }
  // Discrete steady state: v = F·dt·(1−d·dt)/(m·d·dt) = 4.5 at these
  // parameters (the continuous limit is F/(m·d) = 5).
  EXPECT_NEAR(b.vel.x, 4.5, 0.3);
}

TEST(World, BodiesSeparateAfterOverlap) {
  World w;
  CircleBody a, b;
  a.pos = {0, 0};
  b.pos = {0.3, 0};
  a.radius = b.radius = 0.3;
  w.add_body(a);
  w.add_body(b);
  const bool contact = w.step(0.01);
  EXPECT_TRUE(contact);
  EXPECT_GE(distance(w.body(0).pos, w.body(1).pos), 0.6 - 1e-9);
}

TEST(World, MomentumConservedInCollision) {
  World w;
  CircleBody a, b;
  a.pos = {0, 0};
  a.vel = {2.0, 0.0};
  a.damping = 0.0;
  b.pos = {0.65, 0};
  b.damping = 0.0;
  w.add_body(a);
  w.add_body(b);
  for (int i = 0; i < 10; ++i) w.step(0.02);
  const double px = w.body(0).mass * w.body(0).vel.x +
                    w.body(1).mass * w.body(1).vel.x;
  EXPECT_NEAR(px, 2.0, 1e-9);
  // Inelastic contact: the bodies end up moving together.
  EXPECT_NEAR(w.body(0).vel.x, w.body(1).vel.x, 1e-6);
}

TEST(World, WallStopsBody) {
  World w;
  w.add_segment({{1.0, -5.0}, {1.0, 5.0}, 0.05});
  CircleBody b;
  b.pos = {0, 0};
  b.vel = {5.0, 0.0};
  b.damping = 0.0;
  b.radius = 0.2;
  w.add_body(b);
  for (int i = 0; i < 100; ++i) w.step(0.05);
  EXPECT_LE(w.body(0).pos.x, 1.0 - 0.2 + 1e-6);
}

TEST(World, PathClear) {
  World w;
  w.add_segment({{5.0, -1.0}, {5.0, 1.0}, 0.05});
  EXPECT_FALSE(w.path_clear({0, 0}, {10, 0}, 0.2));
  EXPECT_TRUE(w.path_clear({0, 0}, {4, 0}, 0.2));
  EXPECT_TRUE(w.path_clear({0, 3}, {10, 3}, 0.2));  // above the wall
}

TEST(World, ClearResets) {
  World w;
  w.add_body({});
  w.add_segment({{0, 0}, {1, 0}});
  w.clear();
  EXPECT_EQ(w.body_count(), 0u);
  EXPECT_TRUE(w.segments().empty());
}

}  // namespace
}  // namespace imap::phys
