#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/proc.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/zoo.h"
#include "nn/checkpoint.h"
#include "serve/coalescer.h"
#include "serve/http.h"
#include "serve/model_cache.h"
#include "serve/server.h"
#include "temp_dir.h"

namespace imap::serve {
namespace {

/// Lint-clean sleep: poll a pipe that never becomes readable.
void sleep_ms(int ms) {
  static int fds[2] = {-1, -1};
  if (fds[0] < 0) {
    ASSERT_EQ(::pipe(fds), 0);
  }
  proc::poll_readable({fds[0]}, ms);
}

/// The server's response formatting (shortest-round-trip std::to_chars),
/// replicated so tests can compare an HTTP body bit-for-bit against a
/// direct PolicyHandle::query.
std::string format_row(const std::vector<double>& a) {
  char num[32];
  std::string out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto res = std::to_chars(num, num + sizeof num, a[i]);
    if (i > 0) out += ' ';
    out.append(num, static_cast<std::size_t>(res.ptr - num));
  }
  out += '\n';
  return out;
}

std::shared_ptr<const nn::GaussianPolicy> make_net(std::uint64_t seed,
                                                   std::size_t obs = 11,
                                                   std::size_t act = 3) {
  Rng rng(seed);
  return std::make_shared<const nn::GaussianPolicy>(
      obs, act, std::vector<std::size_t>{16, 16}, rng);
}

std::vector<double> make_obs(std::uint64_t seed, std::size_t dim = 11) {
  Rng rng(seed);
  return rng.normal_vec(dim, 0.0, 0.4);
}

// ---------------------------------------------------------------- HTTP ----

TEST(HttpParse, SimpleGet) {
  std::string buf = "GET /health HTTP/1.1\r\nHost: x\r\n\r\n";
  HttpRequest req;
  ASSERT_EQ(parse_request(buf, req), ParseStatus::Ok);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/health");
  EXPECT_TRUE(req.body.empty());
  EXPECT_TRUE(buf.empty());
}

TEST(HttpParse, QueryParams) {
  std::string buf = "GET /attack/status?id=7&verbose HTTP/1.1\r\n\r\n";
  HttpRequest req;
  ASSERT_EQ(parse_request(buf, req), ParseStatus::Ok);
  EXPECT_EQ(req.path, "/attack/status");
  EXPECT_EQ(req.param_ll("id", -1), 7);
  EXPECT_EQ(req.param("verbose", "missing"), "");
  EXPECT_EQ(req.param("absent", "fallback"), "fallback");
}

TEST(HttpParse, PostBodyAndPipelining) {
  std::string buf =
      "POST /infer?env=Hopper HTTP/1.1\r\nContent-Length: 5\r\n\r\n1 2 3"
      "GET /health HTTP/1.1\r\n\r\n";
  HttpRequest req;
  ASSERT_EQ(parse_request(buf, req), ParseStatus::Ok);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "1 2 3");
  EXPECT_EQ(req.param("env"), "Hopper");
  // The pipelined follower stays in the buffer and parses next.
  ASSERT_EQ(parse_request(buf, req), ParseStatus::Ok);
  EXPECT_EQ(req.path, "/health");
  EXPECT_TRUE(buf.empty());
}

TEST(HttpParse, IncompleteThenComplete) {
  std::string buf = "POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nab";
  HttpRequest req;
  EXPECT_EQ(parse_request(buf, req), ParseStatus::Incomplete);
  buf += "cd";
  ASSERT_EQ(parse_request(buf, req), ParseStatus::Ok);
  EXPECT_EQ(req.body, "abcd");
}

TEST(HttpParse, MalformedRequestLine) {
  std::string buf = "NONSENSE\r\n\r\n";
  HttpRequest req;
  EXPECT_EQ(parse_request(buf, req), ParseStatus::Bad);
}

TEST(HttpParse, ResponseRoundTripShape) {
  const std::string r = format_response(200, "text/plain", "hello");
  EXPECT_NE(r.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 5), "hello");
}

// ----------------------------------------------------------- coalescer ----

class CoalescerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = imap::testing::unique_temp_dir("imap_test_coalesce");
    std::filesystem::remove_all(dir_);
    zoo_ = std::make_unique<core::Zoo>(dir_, 0.01, 7);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::shared_ptr<const ServedModel> model(ModelCache& cache,
                                           std::uint64_t seed,
                                           const std::string& env = "Hopper") {
    return cache.put(env, "PPO", make_net(seed));
  }

  std::string dir_;
  std::unique_ptr<core::Zoo> zoo_;
};

TEST_F(CoalescerTest, ScatterGatherBitIdenticalToDirectQuery) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {}, &metrics);
  const auto m = model(cache, 11);

  Coalescer::Options copts;
  copts.max_batch = 16;
  copts.max_wait_us = 200'000;
  Coalescer co(copts, &metrics);

  constexpr std::size_t kClients = 16;
  std::vector<std::vector<double>> got(kClients);
  ThreadPool pool(kClients + 1);
  ScopedPool scope(pool);
  parallel_for(
      kClients, [&](std::size_t i) { got[i] = co.infer(m, make_obs(i)); }, 1);

  for (std::size_t i = 0; i < kClients; ++i)
    EXPECT_EQ(got[i], m->handle.query(make_obs(i))) << "client " << i;
  // The rows really were coalesced: fewer forwards than clients.
  EXPECT_LT(metrics.coalesced_batches.get(), kClients);
  EXPECT_GT(metrics.batch_size.max(), 1u);
  EXPECT_LE(metrics.batch_size.max(), kClients);
  EXPECT_EQ(metrics.batch_size.sum(), kClients);
}

TEST_F(CoalescerTest, DeadlineFlushesPartialBatch) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {}, &metrics);
  const auto m = model(cache, 3);

  Coalescer::Options copts;
  copts.max_batch = 64;  // never reachable with one client
  copts.max_wait_us = 20'000;
  Coalescer co(copts, &metrics);

  const auto obs = make_obs(42);
  EXPECT_EQ(co.infer(m, obs), m->handle.query(obs));
  EXPECT_EQ(metrics.coalesced_batches.get(), 1u);
  EXPECT_EQ(metrics.batch_size.max(), 1u);  // flushed by the deadline alone
}

TEST_F(CoalescerTest, DistinctVictimsNeverShareABatch) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {}, &metrics);
  const auto a = model(cache, 100, "Hopper");
  const auto b = model(cache, 200, "Walker2d");

  Coalescer::Options copts;
  copts.max_batch = 8;
  copts.max_wait_us = 50'000;
  Coalescer co(copts, &metrics);

  constexpr std::size_t kClients = 12;
  std::vector<std::vector<double>> got(kClients);
  ThreadPool pool(kClients + 1);
  ScopedPool scope(pool);
  parallel_for(
      kClients,
      [&](std::size_t i) {
        got[i] = co.infer(i % 2 == 0 ? a : b, make_obs(i));
      },
      1);
  for (std::size_t i = 0; i < kClients; ++i) {
    const auto& m = i % 2 == 0 ? a : b;
    EXPECT_EQ(got[i], m->handle.query(make_obs(i))) << "client " << i;
  }
}

TEST_F(CoalescerTest, DisabledModeStaysBitIdentical) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {}, &metrics);
  const auto m = model(cache, 5);

  Coalescer::Options copts;
  copts.enabled = false;
  Coalescer co(copts, &metrics);
  const auto obs = make_obs(9);
  EXPECT_EQ(co.infer(m, obs), m->handle.query(obs));
  EXPECT_EQ(metrics.batch_size.max(), 1u);
}

TEST_F(CoalescerTest, RejectsWidthMismatch) {
  ModelCache cache(*zoo_, {});
  const auto m = model(cache, 6);
  Coalescer co({});
  EXPECT_THROW(co.infer(m, make_obs(1, 7)), CheckError);
}

// ---------------------------------------------------------- model cache ----

class ModelCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = imap::testing::unique_temp_dir("imap_test_mcache");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    zoo_ = std::make_unique<core::Zoo>(dir_, 0.01, 7);
    // Pre-seed a synthetic checkpoint so cache builds never train.
    ASSERT_TRUE(nn::save_policy(zoo_->checkpoint_path("Hopper", "PPO"),
                                *make_net(1)));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
  std::unique_ptr<core::Zoo> zoo_;
};

TEST_F(ModelCacheTest, HitWithinTtlCostsNoLoad) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {.capacity = 4, .ttl_ms = 60'000, .quant = true},
                   &metrics);
  const auto m1 = cache.get("Hopper", "PPO");
  EXPECT_EQ(metrics.cache_misses.get(), 1u);
  EXPECT_EQ(zoo_->full_loads(), 1u);
  const auto m2 = cache.get("Hopper", "PPO");
  EXPECT_EQ(m1.get(), m2.get());
  EXPECT_EQ(metrics.cache_hits.get(), 1u);
  EXPECT_EQ(zoo_->full_loads(), 1u);  // warm lookup: no archive re-read
  EXPECT_EQ(m1->archive_version, kFormatVersion);
  EXPECT_NE(m1->content_crc, 0u);
  EXPECT_TRUE(m1->quantized);
  EXPECT_TRUE(m1->handle.quantized());
}

TEST_F(ModelCacheTest, TtlExpiryRevalidatesWithOneStat) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {.capacity = 4, .ttl_ms = 30, .quant = false},
                   &metrics);
  const auto m1 = cache.get("Hopper", "PPO");
  sleep_ms(60);
  const auto m2 = cache.get("Hopper", "PPO");
  // Unchanged on disk: the entry re-arms; no reload, no archive re-read.
  EXPECT_EQ(m1.get(), m2.get());
  EXPECT_EQ(metrics.cache_revalidations.get(), 1u);
  EXPECT_EQ(metrics.cache_reloads.get(), 0u);
  EXPECT_EQ(zoo_->full_loads(), 1u);
}

TEST_F(ModelCacheTest, ChangedCheckpointHotSwapsWithoutDroppingOldModel) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {.capacity = 4, .ttl_ms = 30, .quant = false},
                   &metrics);
  const auto before = cache.get("Hopper", "PPO");
  const auto obs = make_obs(4);
  const auto before_action = before->handle.query(obs);

  // Retrain-equivalent: different weights land at the same path.
  ASSERT_TRUE(nn::save_policy(zoo_->checkpoint_path("Hopper", "PPO"),
                              *make_net(2)));
  sleep_ms(60);
  const auto after = cache.get("Hopper", "PPO");
  EXPECT_NE(before.get(), after.get());
  EXPECT_NE(before->content_crc, after->content_crc);
  EXPECT_EQ(metrics.cache_reloads.get(), 1u);
  // The in-flight snapshot keeps serving bit-identically after the swap.
  EXPECT_EQ(before->handle.query(obs), before_action);
  EXPECT_NE(after->handle.query(obs), before_action);
}

TEST_F(ModelCacheTest, CapacityEvictsLeastRecentlyUsed) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {.capacity = 2, .ttl_ms = 60'000, .quant = true},
                   &metrics);
  cache.put("A", "PPO", make_net(1));
  cache.put("B", "PPO", make_net(2));
  cache.get("A", "PPO");  // A is now the most recently used
  cache.put("C", "PPO", make_net(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(metrics.cache_evictions.get(), 1u);
  // B was LRU; A and C survive as instant hits.
  const auto hits = metrics.cache_hits.get();
  cache.get("A", "PPO");
  cache.get("C", "PPO");
  EXPECT_EQ(metrics.cache_hits.get(), hits + 2);
}

TEST_F(ModelCacheTest, InvalidateForcesRebuild) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {.capacity = 4, .ttl_ms = 60'000, .quant = false},
                   &metrics);
  cache.get("Hopper", "PPO");
  cache.invalidate("Hopper", "PPO");
  EXPECT_EQ(cache.size(), 0u);
  cache.get("Hopper", "PPO");
  EXPECT_EQ(metrics.cache_misses.get(), 2u);
}

TEST_F(ModelCacheTest, ModelsJsonListsResidentEntries) {
  ModelCache cache(*zoo_, {});
  cache.put("Hopper", "PPO", make_net(1));
  const std::string json = cache.render_json();
  EXPECT_NE(json.find("\"env\":\"Hopper\""), std::string::npos);
  EXPECT_NE(json.find("\"archive_version\":2"), std::string::npos);
}

TEST_F(ModelCacheTest, ScenarioEntriesCarryThreatModelAndShareTheCheckpoint) {
  ServeMetrics metrics;
  ModelCache cache(*zoo_, {.capacity = 4, .ttl_ms = 60'000, .quant = false},
                   &metrics);
  const auto base = cache.get("Hopper", "PPO");
  const auto scn = cache.get("hopper+obs_perturb:0.2+budget:0.4", "PPO");
  // Distinct residency entries (the threat model is part of the identity)...
  EXPECT_NE(base.get(), scn.get());
  EXPECT_EQ(cache.size(), 2u);
  // ...over ONE underlying artifact: same path, same bytes, one parse.
  EXPECT_EQ(scn->env, "Hopper");
  EXPECT_EQ(scn->scenario, "Hopper+obs_perturb:0.2+budget:0.4");
  EXPECT_DOUBLE_EQ(scn->epsilon, 0.2);
  EXPECT_DOUBLE_EQ(scn->budget, 0.4);
  EXPECT_EQ(scn->path, base->path);
  EXPECT_EQ(scn->content_crc, base->content_crc);
  EXPECT_EQ(scn->policy.get(), base->policy.get());
  EXPECT_EQ(zoo_->full_loads(), 1u);
  // Any spelling of the same scenario hits the same entry.
  const auto again = cache.get("HOPPER+budget:0.4+obs_perturb:0.2", "PPO");
  EXPECT_EQ(again.get(), scn.get());
  // The listing reports the threat-model fields.
  const auto json = cache.render_json();
  EXPECT_NE(json.find("\"scenario\":\"Hopper+obs_perturb:0.2+budget:0.4\""),
            std::string::npos);
  EXPECT_NE(json.find("\"epsilon\":0.2"), std::string::npos);
  EXPECT_NE(json.find("\"budget\":0.4"), std::string::npos);
}

// The satellite fix: a second Zoo lookup of an already-verified checkpoint
// must not re-read the archive.
TEST_F(ModelCacheTest, ZooMemoizesVerifiedCheckpoints) {
  const auto v1 = zoo_->victim_shared("Hopper", "PPO");
  EXPECT_EQ(zoo_->full_loads(), 1u);
  const auto v2 = zoo_->victim_shared("Hopper", "PPO");
  EXPECT_EQ(v1.get(), v2.get());  // same parse, shared ownership
  EXPECT_EQ(zoo_->full_loads(), 1u);
  // A rewritten checkpoint is re-verified exactly once.
  ASSERT_TRUE(nn::save_policy(zoo_->checkpoint_path("Hopper", "PPO"),
                              *make_net(9)));
  const auto v3 = zoo_->victim_shared("Hopper", "PPO");
  EXPECT_NE(v1.get(), v3.get());
  EXPECT_EQ(zoo_->full_loads(), 2u);
  zoo_->victim_shared("Hopper", "PPO");
  EXPECT_EQ(zoo_->full_loads(), 2u);
}

// -------------------------------------------------------------- server ----

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = imap::testing::unique_temp_dir("imap_test_serve");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    ServeOptions opts;
    opts.port = 0;  // ephemeral
    opts.threads = 16;
    opts.coalesce.max_batch = 8;
    opts.coalesce.max_wait_us = 2'000;
    opts.cache.ttl_ms = 600'000;
    opts.job_procs = 1;  // inline fabric: fastest for a smoke job
    opts.bench.zoo_dir = dir_;
    opts.bench.scale = 0.01;
    opts.bench.seed = 7;
    server_ = std::make_unique<Server>(opts);

    // Pre-seed the served victim so no test waits on training.
    ASSERT_TRUE(nn::save_policy(
        server_->zoo().checkpoint_path("Hopper", "PPO"), *make_net(1)));
    server_->start();
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override {
    server_->stop();
    server_.reset();
    std::filesystem::remove_all(dir_);
  }

  int connect_client() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server_->port());
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        static_cast<socklen_t>(sizeof addr)),
              0);
    return fd;
  }

  /// Read exactly one HTTP response off `fd` (headers + Content-Length).
  /// `carry` holds bytes past the first response — pipelined replies can
  /// arrive in one segment, and a stateless reader would swallow the second
  /// response and then block forever waiting for bytes already consumed.
  static std::string read_response(int fd, std::string* carry = nullptr) {
    std::string local;
    std::string& buf = carry != nullptr ? *carry : local;
    char chunk[4096];
    for (;;) {
      const std::size_t head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t cl = buf.find("Content-Length: ");
        EXPECT_NE(cl, std::string::npos);
        const std::size_t len = static_cast<std::size_t>(
            std::strtoull(buf.c_str() + cl + 16, nullptr, 10));
        if (buf.size() >= head_end + 4 + len) {
          const std::string resp = buf.substr(0, head_end + 4 + len);
          buf.erase(0, head_end + 4 + len);
          return resp;
        }
      }
      const ssize_t n = ::recv(fd, chunk, 4096, 0);
      if (n <= 0) {
        const std::string resp = buf;
        buf.clear();
        return resp;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  static int status_of(const std::string& response) {
    return std::atoi(response.c_str() + 9);
  }

  static std::string body_of(const std::string& response) {
    const std::size_t head_end = response.find("\r\n\r\n");
    return head_end == std::string::npos ? "" : response.substr(head_end + 4);
  }

  /// One-shot request on a fresh connection.
  std::string roundtrip(const std::string& method, const std::string& target,
                        const std::string& body = "") {
    const int fd = connect_client();
    std::string req = method + " " + target + " HTTP/1.1\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\n\r\n" + body;
    EXPECT_TRUE(send_all(fd, req));
    const std::string resp = read_response(fd);
    ::close(fd);
    return resp;
  }

  std::string dir_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HealthAndMetrics) {
  const auto health = roundtrip("GET", "/health");
  EXPECT_EQ(status_of(health), 200);
  EXPECT_NE(body_of(health).find("\"status\":\"ok\""), std::string::npos);

  const auto metrics = roundtrip("GET", "/metrics");
  EXPECT_EQ(status_of(metrics), 200);
  EXPECT_NE(body_of(metrics).find("imap_serve_requests_total"),
            std::string::npos);
  EXPECT_NE(body_of(metrics).find("imap_serve_infer_latency_us_p99"),
            std::string::npos);
}

TEST_F(ServerTest, InferIsBitIdenticalToDirectQuery) {
  const auto obs = make_obs(77);
  const auto resp = roundtrip("POST", "/infer?env=Hopper", format_row(obs));
  ASSERT_EQ(status_of(resp), 200);
  // Compare against a handle built exactly like the server's (int8 default).
  const auto direct =
      rl::PolicyHandle::serving(make_net(1), /*quantized=*/true);
  EXPECT_EQ(body_of(resp), format_row(direct.query(obs)));
}

TEST_F(ServerTest, MultiRowBodyIsOneBatch) {
  std::string body;
  for (std::uint64_t i = 0; i < 3; ++i) body += format_row(make_obs(i));
  const auto resp = roundtrip("POST", "/infer?env=Hopper", body);
  ASSERT_EQ(status_of(resp), 200);
  const auto direct =
      rl::PolicyHandle::serving(make_net(1), /*quantized=*/true);
  std::string expect;
  for (std::uint64_t i = 0; i < 3; ++i)
    expect += format_row(direct.query(make_obs(i)));
  EXPECT_EQ(body_of(resp), expect);
  EXPECT_GE(server_->metrics().infer_rows.get(), 3u);
}

TEST_F(ServerTest, ConcurrentClientsCoalesceAndStayBitIdentical) {
  constexpr std::size_t kClients = 16;
  const auto direct =
      rl::PolicyHandle::serving(make_net(1), /*quantized=*/true);
  std::vector<std::string> got(kClients);
  ThreadPool pool(kClients + 1);
  ScopedPool scope(pool);
  parallel_for(
      kClients,
      [&](std::size_t i) {
        const int fd = connect_client();
        const std::string row = format_row(make_obs(1000 + i));
        std::string req =
            "POST /infer?env=Hopper HTTP/1.1\r\nContent-Length: " +
            std::to_string(row.size()) + "\r\n\r\n" + row;
        EXPECT_TRUE(send_all(fd, req));
        got[i] = body_of(read_response(fd));
        ::close(fd);
      },
      1);
  for (std::size_t i = 0; i < kClients; ++i)
    EXPECT_EQ(got[i], format_row(direct.query(make_obs(1000 + i))))
        << "client " << i;
  // Cross-connection gathering actually happened.
  EXPECT_GT(server_->metrics().batch_size.max(), 1u);
}

TEST_F(ServerTest, ErrorPaths) {
  EXPECT_EQ(status_of(roundtrip("POST", "/infer", "1 2 3\n")), 400);
  EXPECT_EQ(status_of(roundtrip("POST", "/infer?env=Hopper", "1 2\n")), 400);
  EXPECT_EQ(status_of(roundtrip("POST", "/infer?env=Hopper", "a b c\n")), 400);
  EXPECT_EQ(status_of(roundtrip("GET", "/infer?env=Hopper")), 405);
  EXPECT_EQ(status_of(roundtrip("GET", "/no/such/route")), 404);
  EXPECT_EQ(status_of(roundtrip("GET", "/attack/status?id=99")), 404);
}

TEST_F(ServerTest, TornRequestLeavesServerServing) {
  // A client that sends half a request and vanishes mid-connection.
  const int fd = connect_client();
  ASSERT_TRUE(
      send_all(fd, "POST /infer?env=Hopper HTTP/1.1\r\nContent-Length: "
                   "400\r\n\r\npartial"));
  ::close(fd);
  // The loop absorbs the dead connection; unrelated requests keep working.
  const auto health = roundtrip("GET", "/health");
  EXPECT_EQ(status_of(health), 200);
  // Eventually the torn connection is reaped.
  for (int i = 0; i < 50 && server_->metrics().connections_closed.get() == 0;
       ++i)
    sleep_ms(10);
  EXPECT_GE(server_->metrics().connections_closed.get(), 1u);
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  const int fd = connect_client();
  const std::string two =
      "GET /health HTTP/1.1\r\n\r\nGET /models HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(send_all(fd, two));
  std::string carry;
  const std::string first = read_response(fd, &carry);
  EXPECT_NE(body_of(first).find("\"status\":\"ok\""), std::string::npos);
  const std::string second = read_response(fd, &carry);
  EXPECT_EQ(status_of(second), 200);
  ::close(fd);
}

TEST_F(ServerTest, ModelsLifecycleOverHttp) {
  roundtrip("POST", "/infer?env=Hopper", format_row(make_obs(1)));
  auto listing = body_of(roundtrip("GET", "/models"));
  EXPECT_NE(listing.find("\"env\":\"Hopper\""), std::string::npos);
  EXPECT_EQ(status_of(roundtrip("POST", "/models/invalidate?env=Hopper")),
            200);
  listing = body_of(roundtrip("GET", "/models"));
  EXPECT_EQ(listing, "[]");
}

TEST_F(ServerTest, ScenarioInferServesBaseVictimAndReportsThreatModel) {
  const auto obs = make_obs(33);
  const auto resp = roundtrip("POST", "/infer?scenario=hopper+obs_perturb:0.2",
                              format_row(obs));
  ASSERT_EQ(status_of(resp), 200);
  // The scenario resolves to its base env's checkpoint — same answers as a
  // plain Hopper infer, bit for bit.
  const auto direct =
      rl::PolicyHandle::serving(make_net(1), /*quantized=*/true);
  EXPECT_EQ(body_of(resp), format_row(direct.query(obs)));

  const auto listing = body_of(roundtrip("GET", "/models"));
  EXPECT_NE(listing.find("\"scenario\":\"Hopper+obs_perturb:0.2\""),
            std::string::npos);
  EXPECT_NE(listing.find("\"env\":\"Hopper\""), std::string::npos);
  EXPECT_NE(listing.find("\"epsilon\":0.2"), std::string::npos);
  EXPECT_NE(listing.find("\"budget\":0"), std::string::npos);

  // A malformed scenario is a 400, never a 500 (and never a training run).
  EXPECT_EQ(status_of(roundtrip("POST", "/infer?scenario=hopper+bogus:1",
                                format_row(obs))),
            400);
}

TEST_F(ServerTest, AttackTrainJobRunsToCompletion) {
  const auto resp = roundtrip(
      "POST", "/attack/train?env=Hopper&attack=Random&steps=512&episodes=2");
  ASSERT_EQ(status_of(resp), 202);
  const std::string body = resp.substr(resp.find("\"id\":") + 5);
  const long long id = std::atoll(body.c_str());
  ASSERT_GE(id, 1);

  std::string state;
  for (int i = 0; i < 600; ++i) {
    const auto status = body_of(
        roundtrip("GET", "/attack/status?id=" + std::to_string(id)));
    if (status.find("\"state\":\"done\"") != std::string::npos) {
      state = status;
      break;
    }
    ASSERT_EQ(status.find("\"state\":\"failed\""), std::string::npos)
        << status;
    sleep_ms(100);
  }
  ASSERT_FALSE(state.empty()) << "job did not finish in time";
  EXPECT_NE(state.find("\"outcome\":"), std::string::npos);
  EXPECT_GE(server_->metrics().jobs_finished.get(), 1u);
}

}  // namespace
}  // namespace imap::serve
