#include <gtest/gtest.h>

#include <cmath>

#include "core/imap_trainer.h"
#include "env/hopper.h"
#include "env/you_shall_not_pass.h"

namespace imap::core {
namespace {

rl::ActionFn feedback_victim() {
  return [](const std::vector<double>& obs) {
    const auto p = env::hopper_params();
    std::vector<double> u(p.n_joints);
    for (std::size_t j = 0; j < p.n_joints; ++j)
      u[j] = 0.3 * p.c[j] - 3.0 * (obs[0] + 0.4 * obs[1]) * p.d[j];
    return u;
  };
}

ImapOptions small_opts(RegularizerType type, bool br = false) {
  ImapOptions o;
  o.reg.type = type;
  o.bias_reduction = br;
  o.ppo.steps_per_iter = 512;
  o.surrogate_scale = 500.0;
  return o;
}

TEST(ImapTrainer, SingleAgentIteratesWithEveryRegularizer) {
  const auto env = env::make_hopper();
  for (const auto type : {RegularizerType::SC, RegularizerType::PC,
                          RegularizerType::R, RegularizerType::D}) {
    ImapTrainer t(*env, feedback_victim(), 0.075, small_opts(type), Rng(3));
    const auto s = t.iterate();
    EXPECT_EQ(s.total_steps, 512);
    EXPECT_DOUBLE_EQ(s.tau, 1.0) << "fixed τ₀ without BR";
    if (type != RegularizerType::R)
      EXPECT_GT(s.mean_intrinsic, 0.0) << to_string(type);
    else
      EXPECT_LT(s.mean_intrinsic, 0.0) << "R bonus is a negative distance";
  }
}

TEST(ImapTrainer, RiskTargetDefaultsToInitialState) {
  const auto env = env::make_hopper();
  ImapTrainer t(*env, feedback_victim(), 0.075,
                small_opts(RegularizerType::R), Rng(3));
  // s₀ ≈ 0 for the locomotors, so states near reset earn near-zero penalty.
  auto s = t.iterate();
  EXPECT_GT(s.mean_intrinsic, -2.0);  // bounded, not wildly off
}

TEST(ImapTrainer, BiasReductionSchedulesTau) {
  const auto env = env::make_hopper();
  ImapTrainer t(*env, feedback_victim(), 0.075,
                small_opts(RegularizerType::PC, /*br=*/true), Rng(3));
  const auto s0 = t.iterate();
  EXPECT_DOUBLE_EQ(s0.tau, 1.0);  // τ₀ = 1 (λ₀ = 0)
  for (int i = 0; i < 5; ++i) t.iterate();
  EXPECT_GT(t.tau(), 0.0);
  EXPECT_LE(t.tau(), 1.0);
  EXPECT_GE(t.bias_reduction().lambda(), 0.0);
}

TEST(ImapTrainer, MultiAgentUsesGameMarginals) {
  const auto game = env::make_you_shall_not_pass();
  rl::ActionFn victim = [](const std::vector<double>&) {
    return std::vector<double>{-1.0, 0.0};
  };
  ImapOptions o = small_opts(RegularizerType::PC);
  o.reg.xi = 0.5;
  ImapTrainer t(*game, victim, o, Rng(5));
  const auto s = t.iterate();
  EXPECT_GT(s.mean_intrinsic, 0.0);
  EXPECT_EQ(t.regularizer().type(), RegularizerType::PC);
}

TEST(ImapTrainer, AdversaryMatchesThreatModelShape) {
  const auto env = env::make_hopper();
  ImapTrainer t(*env, feedback_victim(), 0.075,
                small_opts(RegularizerType::SC), Rng(3));
  t.iterate();
  const auto adv = t.adversary();
  Rng rng(3);
  const auto obs = env->reset(rng);
  EXPECT_EQ(adv(obs).size(), env->obs_dim());
}

TEST(ImapTrainer, DeterministicGivenSeed) {
  const auto env = env::make_hopper();
  ImapTrainer a(*env, feedback_victim(), 0.075,
                small_opts(RegularizerType::PC), Rng(11));
  ImapTrainer b(*env, feedback_victim(), 0.075,
                small_opts(RegularizerType::PC), Rng(11));
  const auto sa = a.iterate();
  const auto sb = b.iterate();
  EXPECT_DOUBLE_EQ(sa.mean_intrinsic, sb.mean_intrinsic);
  EXPECT_DOUBLE_EQ(sa.mean_return, sb.mean_return);
}

TEST(EstimateInitialState, AveragesResets) {
  const auto env = env::make_hopper();
  RegularizerOptions opts;
  Rng rng(3);
  const auto s0 = estimate_initial_state(*env, opts, 16, rng);
  ASSERT_EQ(s0.size(), env->obs_dim());
  for (const double x : s0) EXPECT_LT(std::abs(x), 0.1);
}

}  // namespace
}  // namespace imap::core
