#include <gtest/gtest.h>

#include <cmath>

#include "env/fetch_reach.h"

namespace imap::env {
namespace {

TEST(FetchReach, ForwardKinematicsKnownPoses) {
  // All joints at 0: arm stretched along +x, reach = sum of link lengths.
  const auto ee = FetchReachEnv::forward_kinematics({0.0, 0.0, 0.0});
  EXPECT_NEAR(ee[0], 1.2, 1e-12);
  EXPECT_NEAR(ee[1], 0.0, 1e-12);
  // First joint at 90°: arm along +y.
  const auto up = FetchReachEnv::forward_kinematics({M_PI / 2, 0.0, 0.0});
  EXPECT_NEAR(up[0], 0.0, 1e-9);
  EXPECT_NEAR(up[1], 1.2, 1e-9);
}

TEST(FetchReach, TargetAlwaysReachable) {
  FetchReachEnv env(FetchReachEnv::Mode::Sparse);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto obs = env.reset(rng);
    // Target offset is the last two observation entries; reconstruct the
    // absolute target and check it lies inside the annulus.
    const auto ee = env.end_effector();
    const double tx = ee[0] + obs[6], ty = ee[1] + obs[7];
    const double r = std::sqrt(tx * tx + ty * ty);
    EXPECT_GE(r, 0.45);
    EXPECT_LE(r, 1.05);
    EXPECT_GT(ty, 0.0);  // upper half-plane
  }
}

TEST(FetchReach, VelocityCommandsMoveJoints) {
  FetchReachEnv env(FetchReachEnv::Mode::Sparse);
  Rng rng(3);
  const auto before = env.reset(rng);
  const auto after = env.step({1.0, 0.0, 0.0}).obs;
  EXPECT_GT(after[0], before[0]);        // q0 increased
  EXPECT_NEAR(after[2], before[2], 0.1); // q2 nearly unchanged
}

TEST(FetchReach, JointLimitEndsSparseEpisodeWithPenalty) {
  FetchReachEnv env(FetchReachEnv::Mode::Sparse);
  Rng rng(3);
  env.reset(rng);
  rl::StepResult last;
  for (int i = 0; i < 100; ++i) {
    last = env.step({1.0, 1.0, 1.0});  // slam into the limit
    if (last.done) break;
  }
  ASSERT_TRUE(last.done);
  EXPECT_TRUE(last.fell);
  EXPECT_DOUBLE_EQ(last.reward, -0.1);
  EXPECT_FALSE(last.task_completed);
}

TEST(FetchReach, GreedyJacobianControllerReaches) {
  // A hand-built resolved-rate controller validates the task is solvable
  // within the step limit (the property the victim zoo relies on).
  FetchReachEnv env(FetchReachEnv::Mode::Sparse);
  Rng rng(5);
  int successes = 0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto obs = env.reset(rng);
    for (int t = 0; t < 100; ++t) {
      // Numerical Jacobian-transpose step toward the target.
      const std::array<double, 3> q{obs[0], obs[1], obs[2]};
      const double ex = obs[6], ey = obs[7];  // target − ee
      std::vector<double> u(3);
      const double h = 1e-4;
      for (int j = 0; j < 3; ++j) {
        auto qp = q;
        qp[j] += h;
        const auto eep = FetchReachEnv::forward_kinematics(qp);
        const auto ee = FetchReachEnv::forward_kinematics(q);
        const double jx = (eep[0] - ee[0]) / h, jy = (eep[1] - ee[1]) / h;
        u[j] = std::clamp(1.2 * (jx * ex + jy * ey), -1.0, 1.0);
      }
      const auto sr = env.step(u);
      if (sr.done || sr.truncated) {
        if (sr.task_completed) ++successes;
        break;
      }
      obs = sr.obs;
    }
  }
  EXPECT_GE(successes, 5) << "resolved-rate controller should usually reach";
}

TEST(FetchReach, DenseRewardIsNegativeDistance) {
  FetchReachEnv env(FetchReachEnv::Mode::Dense);
  Rng rng(3);
  const auto obs = env.reset(rng);
  const double d0 = std::sqrt(obs[6] * obs[6] + obs[7] * obs[7]);
  const auto sr = env.step({0.0, 0.0, 0.0});
  EXPECT_NEAR(sr.reward, -d0, 0.15);
}

TEST(FetchReach, Names) {
  EXPECT_EQ(make_fetch_reach()->name(), "FetchReach");
  EXPECT_EQ(make_fetch_reach_dense()->name(), "FetchReachDense");
}

}  // namespace
}  // namespace imap::env
