#include <gtest/gtest.h>

#include <cmath>

#include "attack/gradient_attack.h"
#include "common/check.h"
#include "attack/random_attack.h"
#include "attack/sa_rl.h"
#include "attack/threat_model.h"
#include "env/hopper.h"

namespace imap::attack {
namespace {

nn::GaussianPolicy make_victim_net(Rng& rng) {
  nn::GaussianPolicy pi(11, 3, {16}, rng);
  // Give the network real sensitivity (fresh policy heads are ≈ 0).
  for (auto& w : pi.net().params()) w *= 3.0;
  return pi;
}

TEST(GradientAttack, DirectionIsBoundedAndDeterministic) {
  Rng rng(3);
  const auto victim = make_victim_net(rng);
  const auto attack = make_mad_attack(victim, 0.075, 3);
  const auto obs = rng.normal_vec(11, 0.0, 0.3);
  const auto d1 = attack(obs);
  const auto d2 = attack(obs);
  ASSERT_EQ(d1.size(), 11u);
  EXPECT_EQ(d1, d2);  // white-box heuristic is deterministic per state
  for (const double x : d1) EXPECT_LE(std::abs(x), 1.0 + 1e-12);
}

TEST(GradientAttack, MadMaximizesActionDeviation) {
  // Against the victim's own network, the MAD corner must move the action
  // at least as much as a random corner does (on average).
  Rng rng(5);
  const auto victim = make_victim_net(rng);
  const double eps = 0.1;
  const auto attack = make_mad_attack(victim, eps, 3);

  double mad_dev = 0.0, rand_dev = 0.0;
  Rng qrng(7);
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    const auto obs = qrng.normal_vec(11, 0.0, 0.3);
    const auto mu = victim.mean_action(obs);
    auto deviation = [&](const std::vector<double>& dir) {
      auto adv = obs;
      for (std::size_t c = 0; c < adv.size(); ++c) adv[c] += eps * dir[c];
      const auto mu2 = victim.mean_action(adv);
      double sq = 0.0;
      for (std::size_t c = 0; c < mu.size(); ++c)
        sq += (mu2[c] - mu[c]) * (mu2[c] - mu[c]);
      return sq;
    };
    mad_dev += deviation(attack(obs));
    std::vector<double> random_corner(11);
    for (auto& x : random_corner) x = qrng.bernoulli(0.5) ? 1.0 : -1.0;
    rand_dev += deviation(random_corner);
  }
  EXPECT_GT(mad_dev, rand_dev);
}

TEST(GradientAttack, FgsmIsSingleStepMad) {
  Rng rng(9);
  const auto victim = make_victim_net(rng);
  const auto fgsm = make_fgsm_attack(victim, 0.075);
  const auto mad1 = make_mad_attack(victim, 0.075, 1);
  const auto obs = rng.normal_vec(11, 0.0, 0.3);
  EXPECT_EQ(fgsm(obs), mad1(obs));
}

TEST(GradientAttack, PlugsIntoTheThreatModel) {
  Rng rng(11);
  auto victim_policy = make_victim_net(rng);
  const auto env = env::make_hopper();
  const rl::ActionFn victim_fn = [&victim_policy](const std::vector<double>& o) {
    return victim_policy.mean_action(o);
  };
  Rng er(13);
  const auto eval = evaluate_attack(*env, victim_fn,
                                    make_mad_attack(victim_policy, 0.075, 2),
                                    0.075, 5, er);
  EXPECT_EQ(eval.episode_returns.size(), 5u);
}

TEST(GradientAttack, RejectsBadConfig) {
  Rng rng(3);
  const auto victim = make_victim_net(rng);
  EXPECT_THROW(make_mad_attack(victim, 0.0), imap::CheckError);
  EXPECT_THROW(make_mad_attack(victim, 0.1, 0), imap::CheckError);
}

TEST(RelaxedSaRl, TrainsOnTrueRewardChannel) {
  const auto env = env::make_hopper();
  rl::ActionFn victim = [](const std::vector<double>&) {
    return std::vector<double>{0.2, 0.2, 0.2};
  };
  // The relaxed wrapper must report the NEGATED true reward to the learner.
  StatePerturbationEnv relaxed(*env, victim, 0.075,
                               RewardMode::AdversaryRelaxed);
  StatePerturbationEnv true_mode(*env, victim, 0.075,
                                 RewardMode::VictimTrue);
  Rng r1(3), r2(3);
  relaxed.reset(r1);
  true_mode.reset(r2);
  const std::vector<double> zero(relaxed.act_dim(), 0.0);
  const auto sa = relaxed.step(zero);
  const auto st = true_mode.step(zero);
  EXPECT_DOUBLE_EQ(sa.reward, -st.reward);

  rl::PpoOptions ppo;
  ppo.steps_per_iter = 512;
  SaRl attacker(*env, victim, 0.075, ppo, Rng(5), /*relaxed=*/true);
  const auto stats = attacker.train(1024);
  EXPECT_FALSE(stats.empty());
}

}  // namespace
}  // namespace imap::attack
