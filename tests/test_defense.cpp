#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "defense/atla.h"
#include "defense/radial.h"
#include "defense/sa_regularizer.h"
#include "defense/victim_trainer.h"
#include "defense/wocar.h"
#include "env/hopper.h"

namespace imap::defense {
namespace {

TEST(DefenseKind, NamesRoundTrip) {
  for (const auto kind : all_defenses())
    EXPECT_EQ(defense_from_string(to_string(kind)), kind);
  EXPECT_EQ(all_defenses().size(), 6u);
  EXPECT_THROW(defense_from_string("NotADefense"), CheckError);
}

// Measure the policy's worst-case local output deviation under ε-ball
// input perturbation (sampled corners) — the quantity the smoothness hooks
// are supposed to shrink.
double roughness(const nn::GaussianPolicy& pi, double eps, Rng& rng) {
  double total = 0.0;
  const int n_states = 40, n_corners = 8;
  for (int s = 0; s < n_states; ++s) {
    const auto obs = rng.normal_vec(pi.obs_dim(), 0.0, 0.3);
    const auto mu = pi.mean_action(obs);
    double worst = 0.0;
    for (int c = 0; c < n_corners; ++c) {
      auto adv = obs;
      for (auto& x : adv) x += rng.bernoulli(0.5) ? eps : -eps;
      const auto mu2 = pi.mean_action(adv);
      double sq = 0.0;
      for (std::size_t i = 0; i < mu.size(); ++i)
        sq += (mu2[i] - mu[i]) * (mu2[i] - mu[i]);
      worst = std::max(worst, sq);
    }
    total += worst;
  }
  return total / n_states;
}

// Shared fixture: a tiny rollout of random states for hook invocation.
rl::RolloutBuffer random_rollout(std::size_t obs_dim, std::size_t act_dim,
                                 int n, Rng& rng) {
  rl::RolloutBuffer buf;
  for (int i = 0; i < n; ++i)
    buf.add(rng.normal_vec(obs_dim, 0.0, 0.3), rng.normal_vec(act_dim), 0.0,
            0.0, 0.0);
  return buf;
}

class HookSmoothing : public ::testing::TestWithParam<std::string> {};

TEST_P(HookSmoothing, RepeatedApplicationReducesRoughness) {
  Rng rng(7);
  nn::GaussianPolicy pi(6, 3, {16}, rng);
  // Roughen the policy first so there is something to smooth.
  for (double& w : pi.net().params()) w *= 3.0;

  const double eps = 0.15;
  rl::PpoTrainer::RegularizerHook hook;
  if (GetParam() == "SA")
    hook = make_smoothness_hook(eps, 1.0, 1, rng.split(1));
  else if (GetParam() == "RADIAL")
    hook = make_radial_hook(eps, 1.0, 4, rng.split(1));
  else
    hook = make_wocar_hook(eps, 1.0, rng.split(1));

  Rng mrng(9);
  const double before = roughness(pi, eps, mrng);

  nn::Adam opt(pi.n_params(), {.lr = 3e-3});
  auto buf = random_rollout(6, 3, 64, rng);
  std::vector<std::size_t> batch(buf.size());
  for (std::size_t i = 0; i < batch.size(); ++i) batch[i] = i;
  for (int iter = 0; iter < 60; ++iter) {
    pi.zero_grad();
    hook(pi, buf, batch);
    auto p = pi.flat_params();
    opt.step(p, pi.flat_grads());
    pi.set_flat_params(p);
  }
  Rng mrng2(9);
  const double after = roughness(pi, eps, mrng2);
  EXPECT_LT(after, 0.6 * before) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllHooks, HookSmoothing,
                         ::testing::Values("SA", "RADIAL", "WocaR"),
                         [](const auto& param_info) { return param_info.param; });

TEST(PerturbedVictimEnv, AppliesAdversaryToObservations) {
  const auto inner = env::make_hopper();
  // Constant worst-case adversary: +1 on every dim.
  rl::ActionFn adv = [](const std::vector<double>& o) {
    return std::vector<double>(o.size(), 1.0);
  };
  const double eps = 0.075;
  PerturbedVictimEnv env(*inner, adv, eps);
  auto plain = inner->clone();
  Rng r1(5), r2(5);
  const auto o_pert = env.reset(r1);
  const auto o_plain = plain->reset(r2);
  ASSERT_EQ(o_pert.size(), o_plain.size());
  for (std::size_t i = 0; i < o_pert.size(); ++i)
    EXPECT_NEAR(o_pert[i] - o_plain[i], eps, 1e-12);
}

TEST(PerturbedVictimEnv, KeepsTaskReward) {
  const auto inner = env::make_hopper();
  PerturbedVictimEnv env(*inner, [](const std::vector<double>& o) {
    return std::vector<double>(o.size(), 0.0);
  }, 0.075);
  Rng rng(3);
  env.reset(rng);
  const auto sr = env.step({0.0, 0.0, 0.0});
  EXPECT_GT(sr.reward, 0.0);  // alive bonus — the victim's own reward
}

TEST(TrainVictim, VanillaSmokeAndDeterminism) {
  const auto env = env::make_hopper();
  DefenseOptions opts;
  opts.ppo.steps_per_iter = 512;
  auto p1 = train_victim(*env, DefenseKind::Vanilla, 1024, opts, Rng(3));
  auto p2 = train_victim(*env, DefenseKind::Vanilla, 1024, opts, Rng(3));
  EXPECT_EQ(p1.flat_params(), p2.flat_params());
  EXPECT_EQ(p1.obs_dim(), env->obs_dim());
}

TEST(TrainVictim, AtlaSmoke) {
  const auto env = env::make_hopper();
  DefenseOptions opts;
  opts.eps = 0.075;
  opts.ppo.steps_per_iter = 512;
  opts.atla_rounds = 2;
  const auto p =
      train_victim(*env, DefenseKind::ATLA, 4096, opts, Rng(3));
  EXPECT_EQ(p.act_dim(), env->act_dim());
}

TEST(TrainVictim, RegularizedKindsSmoke) {
  const auto env = env::make_hopper();
  DefenseOptions opts;
  opts.eps = 0.075;
  opts.ppo.steps_per_iter = 512;
  for (const auto kind :
       {DefenseKind::SA, DefenseKind::RADIAL, DefenseKind::WocaR}) {
    const auto p = train_victim(*env, kind, 2048, opts, Rng(3));
    EXPECT_EQ(p.obs_dim(), env->obs_dim()) << to_string(kind);
  }
}

}  // namespace
}  // namespace imap::defense
