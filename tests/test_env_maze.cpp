#include <gtest/gtest.h>

#include <cmath>

#include "env/maze.h"

namespace imap::env {
namespace {

TEST(MazeLayout, UMazeGeometry) {
  const auto m = u_maze_layout();
  EXPECT_EQ(m.name, "AntUMaze");
  EXPECT_EQ(m.walls.size(), 5u);
  // Start and goal are on opposite sides of the central bar.
  EXPECT_LT(m.start.y, 3.0);
  EXPECT_GT(m.goal.y, 3.0);
}

TEST(DistanceField, UMazeForcesTheDetour) {
  const auto m = u_maze_layout();
  const DistanceField field(m);
  const double d_start = field.distance(m.start);
  const double straight = phys::distance(m.start, m.goal);
  // The path distance must be much longer than the straight line (the wall
  // blocks the direct route) — this is what the shaping potential encodes.
  EXPECT_GT(d_start, 1.8 * straight);
  EXPECT_LT(field.distance(m.goal), 0.3);
}

TEST(DistanceField, MonotoneAlongPath) {
  const auto m = u_maze_layout();
  const DistanceField field(m);
  // Distance decreases as we move around the bar's right end toward the goal.
  const double d1 = field.distance({1.0, 1.2});   // start area
  const double d2 = field.distance({5.0, 1.5});   // heading right
  const double d3 = field.distance({5.0, 4.5});   // around the corner
  const double d4 = field.distance({2.0, 4.8});   // approaching goal
  EXPECT_GT(d1, d2);
  EXPECT_GT(d2, d3);
  EXPECT_GT(d3, d4);
}

TEST(DistanceField, InWallQueryStaysFinite) {
  const auto m = u_maze_layout();
  const DistanceField field(m);
  EXPECT_LT(field.distance({0.0, 3.0}), 1e4);  // on the central bar
}

TEST(FourRooms, DoorwaysConnectAllRooms) {
  const auto m = four_rooms_layout();
  const DistanceField field(m);
  // Every room centre must be reachable from the goal.
  for (const auto p : {phys::Vec2{2, 2}, phys::Vec2{6, 2}, phys::Vec2{2, 6},
                       phys::Vec2{6, 6}}) {
    EXPECT_LT(field.distance(p), 30.0);
  }
}

TEST(MazeEnv, ObservationLayout) {
  MazeEnv env(u_maze_layout(), MazeEnv::Mode::Sparse);
  Rng rng(3);
  const auto obs = env.reset(rng);
  ASSERT_EQ(obs.size(), 10u);
  EXPECT_EQ(env.name(), "AntUMaze");
  EXPECT_EQ(env.act_dim(), 2u);
}

TEST(MazeEnv, SparseRewardOnlyAtGoal) {
  MazeEnv env(u_maze_layout(), MazeEnv::Mode::Sparse);
  Rng rng(3);
  env.reset(rng);
  const auto sr = env.step({1.0, 0.0});
  EXPECT_DOUBLE_EQ(sr.reward, 0.0);
  EXPECT_DOUBLE_EQ(sr.surrogate, 0.0);
  EXPECT_FALSE(sr.done);
}

TEST(MazeEnv, DenseShapingFollowsField) {
  MazeEnv env(u_maze_layout(), MazeEnv::Mode::Dense);
  Rng rng(3);
  env.reset(rng);
  // Moving right (toward the bar's gap) reduces the path distance → positive
  // shaping on average over several steps.
  double total = 0.0;
  for (int i = 0; i < 20; ++i) total += env.step({1.0, 0.0}).reward;
  EXPECT_GT(total, 0.0);
}

TEST(MazeEnv, WallsBlockTheRobot) {
  MazeEnv env(u_maze_layout(), MazeEnv::Mode::Sparse);
  Rng rng(3);
  env.reset(rng);
  // Drive straight at the top wall of the bottom corridor.
  for (int i = 0; i < 200; ++i) env.step({0.0, 1.0});
  // The robot cannot be past the central bar at y=3 by going straight up
  // from the start (x≈1, where the bar blocks).
  EXPECT_LT(env.position().y, 3.0);
}

TEST(MazeEnv, ScriptedFieldFollowerReachesGoal) {
  // Greedy descent on the BFS field solves the maze — validates that the
  // dense training signal is sufficient for the victim.
  MazeEnv env(u_maze_layout(), MazeEnv::Mode::Sparse);
  Rng rng(3);
  env.reset(rng);
  const auto& field = env.field();
  bool reached = false;
  for (int i = 0; i < 300 && !reached; ++i) {
    const auto p = env.position();
    // Pick the best of 8 compass directions.
    double best = 1e18;
    phys::Vec2 dir{0, 0};
    for (int k = 0; k < 8; ++k) {
      const double a = k * M_PI / 4;
      const phys::Vec2 cand{std::cos(a), std::sin(a)};
      const double d = field.distance(p + cand * 0.4);
      if (d < best) {
        best = d;
        dir = cand;
      }
    }
    const auto sr = env.step({dir.x, dir.y});
    reached = sr.task_completed;
    if (sr.done || sr.truncated) break;
  }
  EXPECT_TRUE(reached);
}

TEST(MazeEnv, FourRoomsFieldFollowerReachesGoal) {
  MazeEnv env(four_rooms_layout(), MazeEnv::Mode::Sparse);
  Rng rng(4);
  env.reset(rng);
  const auto& field = env.field();
  bool reached = false;
  for (int i = 0; i < 300 && !reached; ++i) {
    const auto p = env.position();
    double best = 1e18;
    phys::Vec2 dir{0, 0};
    for (int k = 0; k < 8; ++k) {
      const double a = k * M_PI / 4;
      const phys::Vec2 cand{std::cos(a), std::sin(a)};
      const double d = field.distance(p + cand * 0.4);
      if (d < best) {
        best = d;
        dir = cand;
      }
    }
    const auto sr = env.step({dir.x, dir.y});
    reached = sr.task_completed;
    if (sr.done || sr.truncated) break;
  }
  EXPECT_TRUE(reached);
}

}  // namespace
}  // namespace imap::env
