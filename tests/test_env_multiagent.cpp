#include <gtest/gtest.h>

#include <cmath>

#include "env/kick_and_defend.h"
#include "env/multiagent.h"
#include "env/you_shall_not_pass.h"

namespace imap::env {
namespace {

TEST(YouShallNotPass, ObservationDimsAndRanges) {
  YouShallNotPassEnv env;
  Rng rng(3);
  const auto [obs_v, obs_a] = env.reset(rng);
  EXPECT_EQ(obs_v.size(), 9u);
  EXPECT_EQ(obs_a.size(), 11u);
  const auto [vb, ve] = env.victim_obs_range();
  const auto [ab, ae] = env.adversary_obs_range();
  EXPECT_LT(ve, ae);  // disjoint projections
  EXPECT_EQ(ve - vb, 4u);
  EXPECT_EQ(ae - ab, 4u);
}

TEST(YouShallNotPass, UnopposedRunnerWins) {
  YouShallNotPassEnv env;
  Rng rng(3);
  env.reset(rng);
  MaStepResult r;
  for (int i = 0; i < 150; ++i) {
    r = env.step({-1.0, 0.0}, {0.0, 0.0});  // run left; blocker idle
    if (r.done || r.truncated) break;
  }
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.victim_won);
}

TEST(YouShallNotPass, IdleRunnerTimesOutAndLoses) {
  YouShallNotPassEnv env;
  Rng rng(3);
  env.reset(rng);
  MaStepResult r;
  for (int i = 0; i < 150; ++i) {
    r = env.step({0.0, 0.0}, {0.0, 0.0});
    if (r.done || r.truncated) break;
  }
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.victim_won);
}

TEST(YouShallNotPass, BracedBlockerWinsTheMomentumContest) {
  YouShallNotPassEnv env;
  Rng rng(3);
  env.reset(rng);
  // Runner sprints left; blocker sprints right into the collision. The
  // blocker is heavier, so a symmetric-speed head-on impact floors the
  // runner (and possibly both) — the interception skill IMAP learns.
  MaStepResult r;
  for (int i = 0; i < 150; ++i) {
    const double dy = env.runner().pos.y - env.blocker().pos.y;
    r = env.step({-1.0, 0.0}, {1.0, std::clamp(4.0 * dy, -1.0, 1.0)});
    if (r.done || r.truncated) break;
  }
  EXPECT_TRUE(env.runner_fallen());
  EXPECT_FALSE(r.victim_won);
}

TEST(YouShallNotPass, StandingStillBlockerGetsRunOver) {
  YouShallNotPassEnv env;
  Rng rng(3);
  // Put the blocker directly in the runner's lane by resetting until they
  // are aligned, then have the runner charge: the runner carries the
  // momentum, so the *blocker* falls (the AP-MARL "collapse" strategy is
  // weak in a momentum contest).
  for (int attempt = 0; attempt < 50; ++attempt) {
    env.reset(rng);
    if (std::abs(env.runner().pos.y - env.blocker().pos.y) < 0.2) break;
  }
  if (std::abs(env.runner().pos.y - env.blocker().pos.y) >= 0.2)
    GTEST_SKIP() << "no aligned reset found";
  MaStepResult r;
  for (int i = 0; i < 150; ++i) {
    r = env.step({-1.0, 0.0}, {0.0, 0.0});
    if (r.done || r.truncated) break;
  }
  EXPECT_FALSE(env.runner_fallen());
}

TEST(YouShallNotPass, WallsConfineBothAgents) {
  YouShallNotPassEnv env;
  Rng rng(3);
  env.reset(rng);
  for (int i = 0; i < 200; ++i) env.step({0.0, 1.0}, {0.0, -1.0});
  EXPECT_LE(std::abs(env.runner().pos.y),
            YouShallNotPassEnv::kFieldY - env.runner().radius + 1e-6);
  EXPECT_LE(std::abs(env.blocker().pos.y),
            YouShallNotPassEnv::kFieldY - env.blocker().radius + 1e-6);
}

TEST(KickAndDefend, StraightKickScoresPastIdleGoalieSometimes) {
  KickAndDefendEnv env;
  Rng rng(9);
  int goals = 0, trials = 20;
  for (int t = 0; t < trials; ++t) {
    env.reset(rng);
    MaStepResult r;
    for (int i = 0; i < 150; ++i) {
      // Kicker runs through the ball toward the gate.
      const double ball_rel_y = env.ball().pos.y - env.kicker().pos.y;
      r = env.step({-1.0, std::clamp(4.0 * ball_rel_y, -1.0, 1.0)},
                   {0.0, 0.0});
      if (r.done || r.truncated) break;
    }
    if (r.victim_won) ++goals;
  }
  // With a stationary goalie covering part of the gate, a straight dribble
  // should score a decent fraction of the time.
  EXPECT_GE(goals, trials / 4);
}

TEST(KickAndDefend, GoalieStaysInItsBox) {
  KickAndDefendEnv env;
  Rng rng(3);
  env.reset(rng);
  for (int i = 0; i < 150; ++i) {
    env.step({0.0, 0.0}, {-1.0, 1.0});  // goalie pushes out of the box
  }
  EXPECT_GE(env.goalie().pos.x, KickAndDefendEnv::kBoxXMin - 1e-9);
  EXPECT_LE(std::abs(env.goalie().pos.y),
            KickAndDefendEnv::kBoxYMax + 1e-9);
}

TEST(KickAndDefend, SaveEndsEpisodeForAdversary) {
  KickAndDefendEnv env;
  Rng rng(3);
  env.reset(rng);
  // Kick straight at the goalie's y: the goalie just holds its line.
  MaStepResult r;
  bool ended = false;
  for (int i = 0; i < 150; ++i) {
    const double goalie_y = env.goalie().pos.y;
    const double ball_y = env.ball().pos.y;
    const double chase = std::clamp(3.0 * (ball_y - goalie_y), -1.0, 1.0);
    const double aim = std::clamp(
        4.0 * (env.ball().pos.y - env.kicker().pos.y), -1.0, 1.0);
    r = env.step({-1.0, aim}, {0.0, chase});
    if (r.done || r.truncated) {
      ended = true;
      break;
    }
  }
  EXPECT_TRUE(ended);
}

TEST(VictimSideEnv, AdaptsGameToSingleAgent) {
  const auto game = make_you_shall_not_pass();
  VictimSideEnv env(*game, YouShallNotPassEnv::victim_training_pool());
  Rng rng(3);
  const auto obs = env.reset(rng);
  EXPECT_EQ(obs.size(), game->victim_obs_dim());
  EXPECT_EQ(env.act_dim(), game->victim_act_dim());
  // Run left → should win against scripted opponents most of the time and
  // produce positive shaping.
  double total = 0.0;
  rl::StepResult sr;
  for (int i = 0; i < 150; ++i) {
    sr = env.step({-1.0, 0.0});
    total += sr.reward;
    if (sr.done || sr.truncated) break;
  }
  EXPECT_GT(total, 0.0);
}

TEST(VictimSideEnv, CloneIsIndependent) {
  const auto game = make_you_shall_not_pass();
  VictimSideEnv env(*game, YouShallNotPassEnv::victim_training_pool());
  Rng rng(3);
  env.reset(rng);
  auto copy = env.clone();
  env.step({-1.0, 0.0});
  // Stepping the original must not advance the clone.
  const auto sr = copy->step({-1.0, 0.0});
  EXPECT_EQ(sr.obs.size(), env.obs_dim());
}

TEST(Games, CloneRoundTrip) {
  for (const auto* name : {"YouShallNotPass", "KickAndDefend"}) {
    const auto game = name == std::string("YouShallNotPass")
                          ? make_you_shall_not_pass()
                          : make_kick_and_defend();
    auto c = game->clone();
    EXPECT_EQ(c->name(), game->name());
    EXPECT_EQ(c->adversary_obs_dim(), game->adversary_obs_dim());
  }
}

}  // namespace
}  // namespace imap::env
