// Tests for the batched kernel layer (nn/batch.h, Mlp::forward_batch /
// backward_batch and the batched policy/critic APIs):
//  * bitwise parity — every batched result must equal the per-sample path
//    exactly, not approximately (the determinism contract in DESIGN.md);
//  * finite-difference correctness of the batched backward;
//  * the zero-allocation guarantee of the Workspace arena in steady state;
//  * end-to-end: a batched PPO update is bit-identical to a per-sample one.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "env/registry.h"
#include "nn/batch.h"
#include "nn/gaussian.h"
#include "nn/mlp.h"
#include "rl/ppo.h"

// ---------------------------------------------------------------------------
// Counting allocator: a global operator new override that tallies
// allocations while a test section is armed. Disabled under sanitizers,
// whose own allocator interposition this would fight with.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define IMAP_TEST_NO_ALLOC_COUNTING 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IMAP_TEST_NO_ALLOC_COUNTING 1
#endif

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<long long> g_alloc_count{0};
}  // namespace

#ifndef IMAP_TEST_NO_ALLOC_COUNTING
// GCC pairs new-expressions elsewhere in this TU with these replacements and
// cannot see that the replacement new allocates via malloc, so free() here is
// the correct partner — silence the heuristic.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t sz) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop
#endif

namespace imap::nn {
namespace {

/// Fill a batch with iid normal rows.
Batch random_batch(std::size_t rows, std::size_t dim, Rng& rng) {
  Batch b(rows, dim);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < dim; ++c) b(r, c) = rng.normal();
  return b;
}

std::vector<double> row_vec(const Batch& b, std::size_t r) {
  return std::vector<double>(b.row(r), b.row(r) + b.dim());
}

class MlpBatchParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MlpBatchParity, ForwardMatchesPerSampleBitwise) {
  const std::size_t bs = GetParam();
  Rng rng(11);
  Mlp net({5, 16, 8, 3}, rng);
  const Batch x = random_batch(bs, 5, rng);

  Mlp::Workspace ws;
  const Batch& y = net.forward_batch(x, ws);
  ASSERT_EQ(y.rows(), bs);
  ASSERT_EQ(y.dim(), 3u);
  for (std::size_t r = 0; r < bs; ++r) {
    const auto yr = net.forward(row_vec(x, r));
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(y(r, c), yr[c]) << "row " << r << " col " << c;
  }
}

TEST_P(MlpBatchParity, BackwardMatchesPerSampleBitwise) {
  const std::size_t bs = GetParam();
  Rng rng(13);
  Mlp batched({5, 16, 8, 3}, rng);
  Rng rng2(13);
  Mlp serial({5, 16, 8, 3}, rng2);
  ASSERT_EQ(batched.params(), serial.params());

  const Batch x = random_batch(bs, 5, rng);
  const Batch gout = random_batch(bs, 3, rng);

  Mlp::Workspace ws;
  batched.zero_grad();
  batched.forward_batch(x, ws);
  const Batch& gin_b = batched.backward_batch(ws, gout);

  serial.zero_grad();
  std::vector<std::vector<double>> gin_s;
  for (std::size_t r = 0; r < bs; ++r) {
    Mlp::Tape tape;
    serial.forward_tape(row_vec(x, r), tape);
    gin_s.push_back(serial.backward(tape, row_vec(gout, r)));
  }

  // Parameter gradients accumulate in the same per-entry order → bitwise.
  ASSERT_EQ(batched.grads().size(), serial.grads().size());
  for (std::size_t i = 0; i < batched.grads().size(); ++i)
    EXPECT_EQ(batched.grads()[i], serial.grads()[i]) << "grad " << i;
  // And so do the input gradients, row by row.
  for (std::size_t r = 0; r < bs; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_EQ(gin_b(r, c), gin_s[r][c]) << "row " << r << " col " << c;
}

TEST_P(MlpBatchParity, InputGradientMatchesPerSampleBitwise) {
  const std::size_t bs = GetParam();
  Rng rng(17);
  Mlp net({4, 12, 2}, rng);
  const Batch x = random_batch(bs, 4, rng);
  const Batch gout = random_batch(bs, 2, rng);

  Mlp::Workspace ws;
  net.forward_batch(x, ws);
  const auto grads_before = net.grads();
  const Batch& gin_b = net.input_gradient_batch(ws, gout);
  EXPECT_EQ(net.grads(), grads_before);  // params untouched

  for (std::size_t r = 0; r < bs; ++r) {
    Mlp::Tape tape;
    net.forward_tape(row_vec(x, r), tape);
    const auto gin = net.input_gradient(tape, row_vec(gout, r));
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(gin_b(r, c), gin[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, MlpBatchParity,
                         ::testing::Values(std::size_t{1}, std::size_t{7},
                                           std::size_t{64}));

// Finite-difference check of backward_batch on the summed loss
// L = Σ_n w_n · out_n — the batched analogue of Mlp.GradientsMatchFiniteDifferences.
TEST(MlpBatch, BackwardMatchesFiniteDifferences) {
  Rng rng(29);
  Mlp net({4, 8, 3}, rng);
  const std::size_t bs = 6;
  const Batch x = random_batch(bs, 4, rng);
  const Batch w = random_batch(bs, 3, rng);

  Mlp::Workspace ws;
  net.zero_grad();
  net.forward_batch(x, ws);
  net.backward_batch(ws, w);
  const auto analytic = net.grads();

  const auto loss = [&] {
    double l = 0.0;
    const Batch& out = net.forward_batch(x, ws);
    for (std::size_t r = 0; r < bs; ++r)
      for (std::size_t c = 0; c < 3; ++c) l += w(r, c) * out(r, c);
    return l;
  };
  const double eps = 1e-6;
  // Mutations go through net.params() each time (never a held reference):
  // the accessor bumps the weight version that keys the workspace transpose
  // cache, so every loss() re-forward sees the perturbed weights.
  const std::size_t n_params = net.params().size();
  for (std::size_t i = 0; i < n_params; i += 7) {
    const double save = net.params()[i];
    net.params()[i] = save + eps;
    const double lp = loss();
    net.params()[i] = save - eps;
    const double lm = loss();
    net.params()[i] = save;
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], fd, 1e-4 * std::max(1.0, std::fabs(fd)))
        << "param " << i;
  }
}

TEST(GaussianPolicyBatch, LogProbBatchMatchesPerSample) {
  Rng rng(31);
  GaussianPolicy pol(6, 3, {16, 16}, rng);
  const std::size_t bs = 9;
  const Batch obs = random_batch(bs, 6, rng);
  const Batch act = random_batch(bs, 3, rng);

  std::vector<double> lp;
  pol.log_prob_batch(obs, act, lp);
  ASSERT_EQ(lp.size(), bs);
  for (std::size_t r = 0; r < bs; ++r)
    EXPECT_EQ(lp[r], pol.log_prob(row_vec(obs, r), row_vec(act, r)));
}

TEST(GaussianPolicyBatch, BackwardLogpBatchMatchesPerSampleBitwise) {
  Rng rng(37);
  GaussianPolicy batched(6, 3, {16, 16}, rng);
  Rng rng2(37);
  GaussianPolicy serial(6, 3, {16, 16}, rng2);
  ASSERT_EQ(batched.flat_params(), serial.flat_params());

  const std::size_t bs = 8;
  const Batch obs = random_batch(bs, 6, rng);
  const Batch act = random_batch(bs, 3, rng);
  std::vector<double> coeff(bs);
  for (auto& c : coeff) c = rng.normal();
  coeff[3] = 0.0;  // a clipped-out sample must be an exact no-op

  batched.zero_grad();
  batched.mean_batch(obs);
  batched.backward_logp_batch(act, coeff);

  serial.zero_grad();
  for (std::size_t r = 0; r < bs; ++r) {
    Mlp::Tape tape;
    serial.mean_tape(row_vec(obs, r), tape);
    serial.backward_logp(tape, row_vec(act, r), coeff[r]);
  }

  EXPECT_EQ(batched.flat_grads(), serial.flat_grads());
}

TEST(ValueNetBatch, ValueAndBackwardMatchPerSampleBitwise) {
  Rng rng(41);
  ValueNet batched(5, {16, 16}, rng);
  Rng rng2(41);
  ValueNet serial(5, {16, 16}, rng2);
  ASSERT_EQ(batched.params(), serial.params());

  const std::size_t bs = 12;
  const Batch obs = random_batch(bs, 5, rng);
  std::vector<double> coeff(bs);
  for (auto& c : coeff) c = rng.normal();

  std::vector<double> v;
  batched.zero_grad();
  batched.value_batch(obs, v);
  batched.backward_batch(coeff);

  serial.zero_grad();
  for (std::size_t r = 0; r < bs; ++r) {
    EXPECT_EQ(v[r], serial.value(row_vec(obs, r)));
    Mlp::Tape tape;
    serial.value_tape(row_vec(obs, r), tape);
    serial.backward(tape, coeff[r]);
  }
  EXPECT_EQ(batched.grads(), serial.grads());
}

// The Workspace arena must stop allocating once warm: after one forward/
// backward at the high-water batch size, further batched steps (same or
// smaller batch) perform zero heap allocations.
TEST(MlpBatch, SteadyStateForwardBackwardAllocatesNothing) {
#ifdef IMAP_TEST_NO_ALLOC_COUNTING
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  Rng rng(43);
  Mlp net({17, 64, 64, 6}, rng);
  const Batch x64 = random_batch(64, 17, rng);
  const Batch x7 = random_batch(7, 17, rng);
  const Batch g64 = random_batch(64, 6, rng);
  const Batch g7 = random_batch(7, 6, rng);

  Mlp::Workspace ws;
  // Warm-up: grows every buffer to the high-water mark.
  net.forward_batch(x64, ws);
  net.backward_batch(ws, g64);
  net.forward_batch(x7, ws);
  net.backward_batch(ws, g7);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int rep = 0; rep < 3; ++rep) {
    net.forward_batch(x64, ws);
    net.backward_batch(ws, g64);
    net.input_gradient_batch(ws, g64);
    net.forward_batch(x7, ws);
    net.backward_batch(ws, g7);
  }
  g_count_allocs.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0)
      << "batched hot path allocated in steady state";
#endif
}

}  // namespace
}  // namespace imap::nn

namespace imap::rl {
namespace {

// End-to-end contract: with identical seeds and options, a trainer running
// the batched update and one running the per-sample update produce
// bit-identical parameters and statistics.
TEST(PpoBatchedUpdate, BitIdenticalToPerSample) {
  auto env = env::make_env("Hopper");
  PpoOptions opts;
  opts.steps_per_iter = 256;
  opts.epochs = 2;
  opts.minibatch = 64;

  opts.batched_update = false;
  PpoTrainer per_sample(*env, opts, Rng(7));
  opts.batched_update = true;
  PpoTrainer batched(*env, opts, Rng(7));

  for (int it = 0; it < 2; ++it) {
    const IterStats a = per_sample.iterate();
    const IterStats b = batched.iterate();
    EXPECT_EQ(a.policy_loss, b.policy_loss) << "iter " << it;
    EXPECT_EQ(a.value_loss, b.value_loss) << "iter " << it;
    EXPECT_EQ(a.approx_kl, b.approx_kl) << "iter " << it;
    EXPECT_EQ(a.mean_return, b.mean_return) << "iter " << it;
  }
  EXPECT_EQ(per_sample.policy().flat_params(), batched.policy().flat_params());
  EXPECT_EQ(per_sample.value_e().params(), batched.value_e().params());
}

// Same contract with gradient sharding on top: the batched kernels compose
// with the sharded accumulation without changing the trace.
TEST(PpoBatchedUpdate, BitIdenticalToPerSampleWithShards) {
  auto env = env::make_env("Hopper");
  PpoOptions opts;
  opts.steps_per_iter = 256;
  opts.epochs = 1;
  opts.minibatch = 64;
  opts.grad_shards = 4;

  opts.batched_update = false;
  PpoTrainer per_sample(*env, opts, Rng(9));
  opts.batched_update = true;
  PpoTrainer batched(*env, opts, Rng(9));

  per_sample.iterate();
  batched.iterate();
  EXPECT_EQ(per_sample.policy().flat_params(), batched.policy().flat_params());
  EXPECT_EQ(per_sample.value_e().params(), batched.value_e().params());
}

}  // namespace
}  // namespace imap::rl
