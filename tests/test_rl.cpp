#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "rl/env.h"
#include "rl/evaluate.h"
#include "rl/gae.h"
#include "rl/normalizer.h"
#include "rl/ppo.h"
#include "rl/space.h"

namespace imap::rl {
namespace {

// A deliberately simple test MDP: 1-D position, action moves it, reward is
// −|x − 3|. Optimal behaviour: run to x = 3 and stay. Terminates (done) if
// |x| > 10, truncates at max_steps.
class LineEnv : public EnvBase<LineEnv> {
 public:
  std::size_t obs_dim() const override { return 1; }
  std::size_t act_dim() const override { return 1; }
  int max_steps() const override { return 60; }
  std::string name() const override { return "Line"; }
  const BoxSpace& action_space() const override { return space_; }

  std::vector<double> reset(Rng& rng) override {
    x_ = rng.uniform(-1.0, 1.0);
    t_ = 0;
    return {x_};
  }

  StepResult step(const std::vector<double>& a) override {
    x_ += 0.5 * std::clamp(a[0], -1.0, 1.0);
    ++t_;
    StepResult sr;
    sr.obs = {x_};
    sr.reward = -std::abs(x_ - 3.0);
    sr.done = std::abs(x_) > 10.0;
    sr.truncated = !sr.done && t_ >= max_steps();
    sr.surrogate = std::abs(x_ - 3.0) < 0.5 ? 1.0 : 0.0;
    sr.task_completed = sr.truncated && std::abs(x_ - 3.0) < 0.5;
    return sr;
  }

 private:
  BoxSpace space_{1, 1.0};
  double x_ = 0.0;
  int t_ = 0;
};

TEST(BoxSpace, ClampAndContains) {
  BoxSpace box({-1.0, 0.0}, {1.0, 2.0});
  const auto c = box.clamp({5.0, -5.0});
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
  EXPECT_TRUE(box.contains(c));
  EXPECT_FALSE(box.contains({2.0, 1.0}));
  EXPECT_THROW(BoxSpace(std::vector<double>{1.0}, std::vector<double>{0.0}),
               CheckError);
}

TEST(BoxSpace, SampleWithinBounds) {
  BoxSpace box(3, 2.5);
  Rng rng(3);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(box.contains(box.sample(rng)));
}

TEST(Gae, SingleStepEpisodeMatchesHandComputation) {
  // One episode of length 1, done: A = r − V(s).
  const auto res = compute_gae({2.0}, {0.5}, {1}, {1}, {0.0}, 0.9, 0.95);
  EXPECT_NEAR(res.advantages[0], 1.5, 1e-12);
  EXPECT_NEAR(res.returns[0], 2.0, 1e-12);
}

TEST(Gae, TwoStepHandComputation) {
  // r = {1, 1}, V = {0, 0}, done at t=1. γ = λ = 1 ⇒ A0 = 2, A1 = 1.
  const auto res =
      compute_gae({1.0, 1.0}, {0.0, 0.0}, {0, 1}, {0, 1}, {0.0}, 1.0, 1.0);
  EXPECT_NEAR(res.advantages[0], 2.0, 1e-12);
  EXPECT_NEAR(res.advantages[1], 1.0, 1e-12);
}

TEST(Gae, TruncationBootstrapsValue) {
  // Truncated (not done): bootstrap with V(s') = 10, γ = 0.5.
  const auto res = compute_gae({1.0}, {0.0}, {0}, {1}, {10.0}, 0.5, 1.0);
  EXPECT_NEAR(res.advantages[0], 1.0 + 0.5 * 10.0, 1e-12);
}

TEST(Gae, SegmentsDoNotLeak) {
  // Two one-step episodes; a huge reward in the second must not bleed into
  // the first segment's advantage.
  const auto res = compute_gae({0.0, 100.0}, {0.0, 0.0}, {1, 1}, {1, 1},
                               {0.0, 0.0}, 0.99, 0.95);
  EXPECT_NEAR(res.advantages[0], 0.0, 1e-12);
  EXPECT_NEAR(res.advantages[1], 100.0, 1e-12);
}

TEST(Gae, RequiresOneBootstrapPerBoundary) {
  EXPECT_THROW(
      compute_gae({1.0, 1.0}, {0.0, 0.0}, {0, 0}, {1, 1}, {0.0}, 0.9, 0.9),
      CheckError);
}

TEST(Gae, NormalizeAdvantages) {
  std::vector<double> adv{1.0, 2.0, 3.0, 4.0};
  normalize_advantages(adv);
  double m = 0.0;
  for (double a : adv) m += a;
  EXPECT_NEAR(m, 0.0, 1e-12);
  // Constant input is left unchanged (no divide-by-zero blowup).
  std::vector<double> flat{2.0, 2.0, 2.0};
  normalize_advantages(flat);
  EXPECT_DOUBLE_EQ(flat[0], 2.0);
}

TEST(Normalizer, MatchesBatchStatistics) {
  Rng rng(5);
  VecNormalizer norm(2);
  std::vector<double> xs0, xs1;
  for (int i = 0; i < 1000; ++i) {
    const std::vector<double> x{rng.normal(3.0, 2.0), rng.normal(-1.0, 0.5)};
    xs0.push_back(x[0]);
    xs1.push_back(x[1]);
    norm.update(x);
  }
  EXPECT_NEAR(norm.mean()[0], mean(xs0), 1e-9);
  EXPECT_NEAR(norm.mean()[1], mean(xs1), 1e-9);
  const auto z = norm.normalize({3.0, -1.0});
  EXPECT_NEAR(z[0], (3.0 - mean(xs0)) / stddev(xs0), 0.01);
}

TEST(Normalizer, ScalarScaler) {
  ScalarScaler s;
  for (int i = 0; i < 100; ++i) s.update(i % 2 ? 1.0 : -1.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-6);
  EXPECT_NEAR(s.scale(2.0), 2.0, 1e-4);
}

TEST(Ppo, LearnsTheLineTask) {
  LineEnv env;
  PpoOptions opts;
  opts.steps_per_iter = 1024;
  PpoTrainer trainer(env, opts, Rng(3));
  const auto stats = trainer.train(40'000);
  ASSERT_FALSE(stats.empty());
  // Optimal return ≈ −(ramp-in cost) ≈ −9; random policy scores ≈ −180.
  EXPECT_GT(stats.back().mean_return, -40.0);
  // Deterministic evaluation should park next to x = 3.
  auto policy = trainer.policy();
  Rng eval_rng(11);
  const auto eval = evaluate(
      env,
      [&policy](const std::vector<double>& o) { return policy.mean_action(o); },
      20, eval_rng);
  EXPECT_GT(eval.returns.mean, -30.0);
  EXPECT_GT(eval.success_rate, 0.8);
}

TEST(Ppo, IntrinsicHookReceivesRolloutAndScalesAdvantage) {
  LineEnv env;
  PpoOptions opts;
  opts.steps_per_iter = 256;
  PpoTrainer trainer(env, opts, Rng(5));
  int calls = 0;
  std::size_t seen = 0;
  trainer.set_intrinsic_hook([&](RolloutBuffer& buf) {
    ++calls;
    seen = buf.size();
    for (auto& r : buf.rew_i) r = 1.0;
    return 0.5;
  });
  const auto s = trainer.iterate();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 256u);
  EXPECT_DOUBLE_EQ(s.tau, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_intrinsic, 1.0);
}

TEST(Ppo, DeterministicGivenSeed) {
  LineEnv env;
  PpoOptions opts;
  opts.steps_per_iter = 256;
  PpoTrainer a(env, opts, Rng(9)), b(env, opts, Rng(9));
  const auto sa = a.iterate();
  const auto sb = b.iterate();
  EXPECT_DOUBLE_EQ(sa.mean_return, sb.mean_return);
  EXPECT_EQ(a.policy().flat_params(), b.policy().flat_params());
}

TEST(Ppo, SetEnvRejectsMismatchedSpaces) {
  LineEnv env;
  PpoTrainer trainer(env, {}, Rng(1));
  class WrongEnv : public LineEnv {
   public:
    std::size_t obs_dim() const override { return 2; }
  };
  WrongEnv wrong;
  EXPECT_THROW(trainer.set_env(wrong), CheckError);
}

TEST(Evaluate, CountsSuccessesAndLengths) {
  LineEnv env;
  Rng rng(3);
  // A hand-written optimal controller.
  const auto stats = evaluate(
      env,
      [](const std::vector<double>& o) {
        return std::vector<double>{o[0] < 3.0 ? 1.0 : -1.0};
      },
      10, rng);
  EXPECT_EQ(stats.episode_returns.size(), 10u);
  EXPECT_DOUBLE_EQ(stats.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_length, 60.0);
  EXPECT_GT(stats.returns.mean, -30.0);
}

// evaluate_batched's contract: episode e equals — exactly — a one-episode
// serial evaluate() run on the child stream rng.split(e).
TEST(Evaluate, BatchedMatchesPerEpisodeSerialExactly) {
  LineEnv env;
  Rng rng_train(5);
  nn::GaussianPolicy policy(env.obs_dim(), env.act_dim(), {8, 8}, rng_train);

  constexpr int kEpisodes = 6;
  Rng rng_batched(21);
  const auto batched = evaluate_batched(env, policy, kEpisodes, rng_batched);
  ASSERT_EQ(batched.episode_returns.size(), static_cast<std::size_t>(kEpisodes));

  Rng rng_serial(21);
  long long total_len = 0;
  for (int e = 0; e < kEpisodes; ++e) {
    Rng er = rng_serial.split(static_cast<std::uint64_t>(e));
    const auto serial = evaluate(
        env,
        [&policy](const std::vector<double>& o) {
          return policy.mean_action(o);
        },
        1, er);
    EXPECT_EQ(batched.episode_returns[static_cast<std::size_t>(e)],
              serial.episode_returns[0])
        << "episode " << e;
    total_len += static_cast<long long>(serial.mean_length);
  }
  EXPECT_DOUBLE_EQ(batched.mean_length,
                   static_cast<double>(total_len) / kEpisodes);
}

TEST(Evaluate, TrajectoryEndsAtBoundary) {
  LineEnv env;
  Rng rng(3);
  const auto traj = rollout_trajectory(
      env, [](const std::vector<double>&) { return std::vector<double>{0.0}; },
      rng);
  EXPECT_EQ(traj.size(), 61u);  // initial obs + 60 steps (truncation)
}

}  // namespace
}  // namespace imap::rl
