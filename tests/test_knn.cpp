#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/knn.h"

namespace imap::core {
namespace {

TEST(Knn, ExactDistancesSmallSet) {
  Rng rng(3);
  KnnBuffer buf(1, 16, 1, rng);
  for (const double x : {0.0, 1.0, 3.0}) buf.add(std::vector<double>{x});
  EXPECT_DOUBLE_EQ(buf.knn_distance(std::vector<double>{0.5}), 0.5);
  EXPECT_DOUBLE_EQ(buf.knn_distance(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(buf.knn_distance(std::vector<double>{10.0}), 7.0);
}

TEST(Knn, KthNearestNotFirst) {
  Rng rng(3);
  KnnBuffer buf(1, 16, 3, rng);
  for (const double x : {0.0, 1.0, 2.0, 10.0}) buf.add(std::vector<double>{x});
  // 3rd nearest of 0.1: distances {0.1, 0.9, 1.9, 9.9} → 1.9.
  EXPECT_DOUBLE_EQ(buf.knn_distance(std::vector<double>{0.1}), 1.9);
}

TEST(Knn, UnderfilledReportsInfinityAndZeroDensity) {
  Rng rng(3);
  KnnBuffer buf(2, 16, 3, rng);
  buf.add(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(std::isinf(buf.knn_distance(std::vector<double>{1.0, 1.0})));
  EXPECT_DOUBLE_EQ(buf.density({1.0, 1.0}), 0.0);
}

TEST(Knn, DensityInverseOfDistance) {
  Rng rng(3);
  KnnBuffer buf(1, 8, 1, rng);
  buf.add(std::vector<double>{0.0});
  EXPECT_NEAR(buf.density({2.0}), 0.5, 1e-5);
  EXPECT_GT(buf.density({0.1}), buf.density({1.0}));
}

TEST(Knn, MatchesBruteForceOnRandomData) {
  Rng rng(7);
  const std::size_t dim = 5, n = 200, k = 3;
  KnnBuffer buf(dim, n, k, rng.split(1));
  std::vector<std::vector<double>> data;
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back(rng.normal_vec(dim));
    buf.add(data.back());
  }
  for (int trial = 0; trial < 20; ++trial) {
    const auto q = rng.normal_vec(dim);
    std::vector<double> dists;
    for (const auto& p : data) {
      double sq = 0;
      for (std::size_t c = 0; c < dim; ++c) sq += (p[c] - q[c]) * (p[c] - q[c]);
      dists.push_back(std::sqrt(sq));
    }
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    EXPECT_NEAR(buf.knn_distance(q), dists[k - 1], 1e-9);
  }
}

TEST(Knn, ReservoirKeepsCapacityAndTotal) {
  Rng rng(9);
  KnnBuffer buf(2, 50, 3, rng);
  for (int i = 0; i < 500; ++i) buf.add(rng.normal_vec(2));
  EXPECT_EQ(buf.size(), 50u);
  EXPECT_EQ(buf.total_added(), 500u);
}

TEST(Knn, ReservoirIsApproximatelyUniform) {
  // Feed two phases with distinguishable distributions; a correct reservoir
  // keeps ≈ half from each, while naive ring-replacement would keep only
  // the second phase.
  Rng rng(11);
  KnnBuffer buf(1, 200, 1, rng);
  for (int i = 0; i < 1000; ++i) buf.add(std::vector<double>{0.0});
  for (int i = 0; i < 1000; ++i) buf.add(std::vector<double>{100.0});
  // Query near 0: if any phase-1 points survived, distance ≈ 0.
  EXPECT_LT(buf.knn_distance(std::vector<double>{0.0}), 1.0);
  EXPECT_LT(buf.knn_distance(std::vector<double>{100.0}), 1.0);
}

TEST(Knn, ClearResets) {
  Rng rng(3);
  KnnBuffer buf(1, 8, 1, rng);
  buf.add(std::vector<double>{1.0});
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.total_added(), 0u);
}

TEST(Knn, RejectsBadConfig) {
  Rng rng(3);
  EXPECT_THROW(KnnBuffer(0, 8, 1, rng), CheckError);
  EXPECT_THROW(KnnBuffer(2, 2, 3, rng), CheckError);  // capacity < k
}

TEST(Knn, RejectsWrongDim) {
  Rng rng(3);
  KnnBuffer buf(3, 8, 1, rng);
  EXPECT_THROW(buf.add(std::vector<double>{1.0}), CheckError);
}

}  // namespace
}  // namespace imap::core
