// Randomised property tests: fuzz the core numerical components against
// independent reference implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/knn.h"
#include "nn/gaussian.h"
#include "rl/gae.h"

namespace imap {
namespace {

// ---------------------------------------------------------------- GAE

/// Naive O(n²) reference: A_t = Σ_{l≥0} (γλ)^l δ_{t+l} within the segment,
/// computed forward from the definition.
rl::GaeResult naive_gae(const std::vector<double>& r,
                        const std::vector<double>& v,
                        const std::vector<unsigned char>& done,
                        const std::vector<unsigned char>& boundary,
                        const std::vector<double>& bootstrap, double gamma,
                        double lambda) {
  const std::size_t n = r.size();
  rl::GaeResult out;
  out.advantages.assign(n, 0.0);
  out.returns.assign(n, 0.0);

  // Precompute per-step deltas with the correct next-value per position.
  std::vector<double> delta(n);
  std::size_t bi = 0;
  std::vector<double> next_v(n);
  std::vector<bool> terminal(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (boundary[t]) {
      next_v[t] = done[t] ? 0.0 : bootstrap[bi];
      terminal[t] = true;
      ++bi;
    } else {
      next_v[t] = v[t + 1];
      terminal[t] = false;
    }
    delta[t] = r[t] + gamma * next_v[t] * (done[t] ? 0.0 : 1.0) - v[t];
  }
  for (std::size_t t = 0; t < n; ++t) {
    double acc = 0.0, w = 1.0;
    for (std::size_t l = t; l < n; ++l) {
      acc += w * delta[l];
      if (terminal[l]) break;
      w *= gamma * lambda;
    }
    out.advantages[t] = acc;
    out.returns[t] = acc + v[t];
  }
  return out;
}

TEST(Fuzz, GaeMatchesNaiveReference) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    std::vector<double> r(n), v(n);
    std::vector<unsigned char> done(n, 0), boundary(n, 0);
    std::vector<double> bootstrap;
    for (std::size_t t = 0; t < n; ++t) {
      r[t] = rng.normal(0.0, 2.0);
      v[t] = rng.normal(0.0, 2.0);
      if (t + 1 == n || rng.bernoulli(0.15)) {
        boundary[t] = 1;
        done[t] = rng.bernoulli(0.5) ? 1 : 0;
        bootstrap.push_back(done[t] ? 0.0 : rng.normal(0.0, 2.0));
      }
    }
    const double gamma = rng.uniform(0.5, 1.0);
    const double lambda = rng.uniform(0.5, 1.0);

    const auto fast =
        rl::compute_gae(r, v, done, boundary, bootstrap, gamma, lambda);
    const auto slow =
        naive_gae(r, v, done, boundary, bootstrap, gamma, lambda);
    for (std::size_t t = 0; t < n; ++t) {
      ASSERT_NEAR(fast.advantages[t], slow.advantages[t], 1e-9)
          << "trial " << trial << " t=" << t;
      ASSERT_NEAR(fast.returns[t], slow.returns[t], 1e-9);
    }
  }
}

// ---------------------------------------------------------------- KNN

TEST(Fuzz, KnnMatchesBruteForceUnderInterleavedOps) {
  Rng rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t dim = 1 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t cap = 256;  // below capacity: buffer stores everything
    core::KnnBuffer buf(dim, cap, k, rng.split(trial));
    std::vector<std::vector<double>> mirror;

    for (int op = 0; op < 150; ++op) {
      if (mirror.size() < cap && (mirror.empty() || rng.bernoulli(0.7))) {
        auto s = rng.normal_vec(dim, 0.0, 3.0);
        buf.add(s);
        mirror.push_back(std::move(s));
      } else {
        const auto q = rng.normal_vec(dim, 0.0, 3.0);
        std::vector<double> dists;
        for (const auto& p : mirror) {
          double sq = 0;
          for (std::size_t c = 0; c < dim; ++c)
            sq += (p[c] - q[c]) * (p[c] - q[c]);
          dists.push_back(std::sqrt(sq));
        }
        const double got = buf.knn_distance(q);
        if (dists.size() < k) {
          ASSERT_TRUE(std::isinf(got));
        } else {
          std::nth_element(dists.begin(),
                           dists.begin() + static_cast<std::ptrdiff_t>(k - 1),
                           dists.end());
          ASSERT_NEAR(got, dists[k - 1], 1e-9);
        }
      }
    }
  }
}

// ------------------------------------------------------- Gaussian policy

TEST(Fuzz, LogProbConsistentWithSampling) {
  // Monte-Carlo check: E[exp(logp)] integrates to ≈ 1 over a grid for 1-D.
  Rng rng(303);
  for (int trial = 0; trial < 5; ++trial) {
    const double mean = rng.normal(0.0, 1.0);
    const double ls = rng.uniform(-1.0, 0.5);
    double integral = 0.0;
    const double lo = mean - 6.0 * std::exp(ls), hi = mean + 6.0 * std::exp(ls);
    const int steps = 2000;
    const double h = (hi - lo) / steps;
    for (int i = 0; i < steps; ++i) {
      const double x = lo + (i + 0.5) * h;
      integral += std::exp(nn::diag_gaussian::log_prob({x}, {mean}, {ls})) * h;
    }
    EXPECT_NEAR(integral, 1.0, 1e-3);
  }
}

TEST(Fuzz, KlNonNegativeAndZeroIffEqual) {
  Rng rng(404);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t d = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    const auto m1 = rng.normal_vec(d), m2 = rng.normal_vec(d);
    const auto s1 = rng.uniform_vec(d, -1.0, 0.5);
    const auto s2 = rng.uniform_vec(d, -1.0, 0.5);
    EXPECT_GE(nn::diag_gaussian::kl(m1, s1, m2, s2), -1e-12);
    EXPECT_NEAR(nn::diag_gaussian::kl(m1, s1, m1, s1), 0.0, 1e-12);
  }
}

TEST(Fuzz, PolicyRoundTripThroughFlatParams) {
  Rng rng(505);
  for (int trial = 0; trial < 10; ++trial) {
    nn::GaussianPolicy a(4, 2, {8, 8}, rng);
    nn::GaussianPolicy b(4, 2, {8, 8}, rng);
    b.set_flat_params(a.flat_params());
    const auto obs = rng.normal_vec(4);
    EXPECT_EQ(a.mean_action(obs), b.mean_action(obs));
    EXPECT_EQ(a.log_std(), b.log_std());
  }
}

}  // namespace
}  // namespace imap
