#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace imap {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  ScopedPool scope(pool);
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ChunkedFormCoversDisjointRanges) {
  ThreadPool pool(4);
  ScopedPool scope(pool);
  constexpr std::size_t n = 1237;  // deliberately not a multiple of anything
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunked(n, 16, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    ASSERT_LE(e, n);
    for (std::size_t i = b; i < e; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ResultsIdenticalToSerialLoop) {
  std::vector<double> serial(513), pooled(513);
  for (std::size_t i = 0; i < serial.size(); ++i)
    serial[i] = static_cast<double>(i) * 1.5 - 3.0;
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    parallel_for(pooled.size(), [&](std::size_t i) {
      pooled[i] = static_cast<double>(i) * 1.5 - 3.0;
    });
  }
  EXPECT_EQ(serial, pooled);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  ScopedPool scope(pool);
  EXPECT_THROW(
      parallel_for(
          1000,
          [&](std::size_t i) {
            if (i == 617) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<std::size_t> count{0};
  parallel_for(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  ScopedPool scope(pool);
  constexpr std::size_t outer = 16, inner = 64;
  std::vector<std::atomic<std::size_t>> sums(outer);
  parallel_for(
      outer,
      [&](std::size_t o) {
        parallel_for(inner, [&, o](std::size_t i) {
          sums[o].fetch_add(i, std::memory_order_relaxed);
        });
      },
      /*grain=*/1);
  const std::size_t expect = inner * (inner - 1) / 2;
  for (std::size_t o = 0; o < outer; ++o) EXPECT_EQ(sums[o].load(), expect);
}

TEST(ThreadPool, ScopedSerialForcesInlineExecution) {
  ThreadPool pool(4);
  ScopedPool scope(pool);
  EXPECT_EQ(effective_concurrency(), 4u);
  {
    ScopedSerial serial;
    EXPECT_EQ(effective_concurrency(), 1u);
    // Under ScopedSerial a parallel_for must run on the calling thread only.
    const auto self = std::this_thread::get_id();
    parallel_for(256, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), self);
    });
  }
  EXPECT_EQ(effective_concurrency(), 4u);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  ScopedPool scope(pool);
  const auto self = std::this_thread::get_id();
  parallel_for(64, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), self);
  });
}

TEST(ThreadPool, ConfiguredThreadsReadsEnvironment) {
  // Only exercised when the var is unset by the test harness: the fallback
  // must be at least 1.
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  ScopedPool scope(pool);
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace imap
