// The determinism contract of the parallel execution layer: structural
// options (worker count K, gradient shards S) fix the numeric trace, the
// thread count never does. Everything here compares serial execution
// (ScopedSerial) against a real 4-thread pool (ScopedPool) bit-for-bit.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/knn.h"
#include "env/registry.h"
#include "rl/ppo.h"

namespace imap {
namespace {

std::vector<rl::IterStats> run_trainer(const rl::PpoOptions& opts, int iters,
                                       std::vector<double>& final_params) {
  auto env = env::make_env("Hopper");
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  std::vector<rl::IterStats> out;
  for (int i = 0; i < iters; ++i) out.push_back(trainer.iterate());
  final_params = trainer.policy().flat_params();
  return out;
}

void expect_identical(const std::vector<rl::IterStats>& a,
                      const std::vector<rl::IterStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean_return, b[i].mean_return) << "iter " << i;
    EXPECT_EQ(a[i].mean_surrogate, b[i].mean_surrogate) << "iter " << i;
    EXPECT_EQ(a[i].episodes, b[i].episodes) << "iter " << i;
    EXPECT_EQ(a[i].policy_loss, b[i].policy_loss) << "iter " << i;
    EXPECT_EQ(a[i].value_loss, b[i].value_loss) << "iter " << i;
    EXPECT_EQ(a[i].approx_kl, b[i].approx_kl) << "iter " << i;
    EXPECT_EQ(a[i].entropy, b[i].entropy) << "iter " << i;
  }
}

TEST(ParallelDeterminism, PpoTraceIdenticalFor1And4Threads) {
  rl::PpoOptions opts;
  opts.steps_per_iter = 512;
  opts.num_workers = 4;
  opts.grad_shards = 0;  // auto — derived from minibatch, not thread count

  std::vector<double> serial_params, pooled_params;
  std::vector<rl::IterStats> serial_stats, pooled_stats;
  {
    ScopedSerial serial;
    serial_stats = run_trainer(opts, 3, serial_params);
  }
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    pooled_stats = run_trainer(opts, 3, pooled_params);
  }
  expect_identical(serial_stats, pooled_stats);
  EXPECT_EQ(serial_params, pooled_params);
}

TEST(ParallelDeterminism, LegacySerialOptionsUnaffectedByPool) {
  // num_workers = 1 / grad_shards = 1 is the pre-parallel code path; running
  // it on a pool must not change a single bit.
  rl::PpoOptions opts;
  opts.steps_per_iter = 512;

  std::vector<double> serial_params, pooled_params;
  std::vector<rl::IterStats> serial_stats, pooled_stats;
  {
    ScopedSerial serial;
    serial_stats = run_trainer(opts, 2, serial_params);
  }
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    pooled_stats = run_trainer(opts, 2, pooled_params);
  }
  expect_identical(serial_stats, pooled_stats);
  EXPECT_EQ(serial_params, pooled_params);
}

TEST(ParallelDeterminism, KnnQueriesIdenticalFor1And4Threads) {
  constexpr std::size_t dim = 8, rows = 3000, k = 3;
  Rng rng(42);
  core::KnnBuffer buf(dim, rows, k, rng.split(1));
  for (std::size_t i = 0; i < rows; ++i) buf.add(rng.normal_vec(dim));

  std::vector<std::vector<double>> queries;
  for (int q = 0; q < 32; ++q) queries.push_back(rng.normal_vec(dim));

  std::vector<double> serial_d, pooled_d;
  {
    ScopedSerial serial;
    for (const auto& q : queries) serial_d.push_back(buf.knn_distance(q));
  }
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    for (const auto& q : queries) pooled_d.push_back(buf.knn_distance(q));
  }
  EXPECT_EQ(serial_d, pooled_d);

  // The sq path must agree with the public distance exactly.
  for (std::size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(std::sqrt(buf.knn_distance_sq(queries[i])), serial_d[i]);
}

TEST(ParallelDeterminism, ExperimentCellIdenticalFor1And4Threads) {
  // One tiny table cell end-to-end (victim training, SA-RL attack, eval),
  // run from scratch in separate zoo dirs so the result cache cannot mask a
  // divergence.
  auto run_cell = [](const std::string& zoo_dir) {
    std::filesystem::remove_all(zoo_dir);
    BenchConfig cfg;
    cfg.zoo_dir = zoo_dir;
    cfg.scale = 0.01;
    cfg.seed = 7;
    core::ExperimentRunner runner(cfg);
    core::AttackPlan plan;
    plan.env_name = "FetchReach";
    plan.attack = core::AttackKind::SaRl;
    plan.attack_steps = 4096;
    plan.eval_episodes = 5;
    const auto out = runner.run(plan);
    std::filesystem::remove_all(zoo_dir);
    return out;
  };

  core::AttackOutcome serial_out, pooled_out;
  {
    ScopedSerial serial;
    serial_out = run_cell("/tmp/imap_test_pdet_serial");
  }
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    pooled_out = run_cell("/tmp/imap_test_pdet_pool");
  }
  EXPECT_EQ(serial_out.victim_eval.episode_returns,
            pooled_out.victim_eval.episode_returns);
  EXPECT_EQ(serial_out.victim_eval.returns.mean,
            pooled_out.victim_eval.returns.mean);
  ASSERT_EQ(serial_out.curve.size(), pooled_out.curve.size());
  for (std::size_t i = 0; i < serial_out.curve.size(); ++i)
    EXPECT_EQ(serial_out.curve[i].victim_success,
              pooled_out.curve[i].victim_success);
}

}  // namespace
}  // namespace imap
