// End-to-end integration tests: the full pipeline (victim training → threat
// model → attack learning → evaluation) at miniature budgets. These assert
// pipeline soundness, not paper-level attack quality — the bench binaries
// cover that at full scale.

#include <gtest/gtest.h>

#include <filesystem>

#include "attack/random_attack.h"
#include "attack/threat_model.h"
#include "core/experiment.h"
#include "core/imap_trainer.h"
#include "core/zoo.h"
#include "nn/checkpoint.h"
#include "defense/victim_trainer.h"
#include "env/registry.h"

namespace imap {
namespace {

TEST(Integration, VictimTrainingImprovesHopper) {
  const auto env = env::make_env("Hopper");
  Rng rng(7);

  defense::DefenseOptions opts;
  auto young = defense::train_victim(*env, defense::DefenseKind::Vanilla,
                                     4096, opts, rng.split(1));
  auto adult = defense::train_victim(*env, defense::DefenseKind::Vanilla,
                                     80'000, opts, rng.split(1));

  Rng e1(17), e2(17);
  const auto young_eval = attack::evaluate_attack(
      *env, core::Zoo::as_fn(young),
      attack::make_null_attack(env->obs_dim()), 0.075, 20, e1);
  const auto adult_eval = attack::evaluate_attack(
      *env, core::Zoo::as_fn(adult),
      attack::make_null_attack(env->obs_dim()), 0.075, 20, e2);
  EXPECT_GT(adult_eval.returns.mean, young_eval.returns.mean + 50.0);
}

TEST(Integration, ImapAttackBeatsNullOnTrainedVictim) {
  const auto env = env::make_env("Hopper");
  Rng rng(7);
  auto victim_policy = defense::train_victim(
      *env, defense::DefenseKind::Vanilla, 80'000, {}, rng.split(1));
  const auto victim = core::Zoo::as_fn(victim_policy);
  const double eps = env::spec("Hopper").epsilon;

  core::ImapOptions opts;
  opts.reg.type = core::RegularizerType::PC;
  opts.bias_reduction = true;
  opts.surrogate_scale = env->max_steps();
  core::ImapTrainer attacker(*env, victim, eps, opts, rng.split(2));
  attacker.train(60'000);

  Rng e1(23), e2(23);
  const auto clean = attack::evaluate_attack(
      *env, victim, attack::make_null_attack(env->obs_dim()), eps, 20, e1);
  const auto attacked = attack::evaluate_attack(
      *env, victim, attacker.adversary(), eps, 20, e2);
  // The learned attack must take a real bite out of the victim's reward
  // (full-scale attacks in the benches collapse it much further).
  EXPECT_LT(attacked.returns.mean, 0.95 * clean.returns.mean);
}

TEST(Integration, SparseTaskEndToEnd) {
  // FetchReach is the cheapest sparse task: victim reaches ≈ always, and a
  // short IMAP-PC run should already dent the success rate.
  BenchConfig cfg;
  cfg.zoo_dir = "/tmp/imap_test_integration_zoo";
  cfg.scale = 0.4;
  cfg.seed = 7;
  std::filesystem::remove_all(cfg.zoo_dir);
  core::ExperimentRunner runner(cfg);

  core::AttackPlan none;
  none.env_name = "FetchReach";
  none.attack = core::AttackKind::None;
  none.eval_episodes = 30;
  const auto clean = runner.run(none);
  EXPECT_GT(clean.victim_eval.success_rate, 0.5);

  core::AttackPlan imap = none;
  imap.attack = core::AttackKind::ImapPC;
  const auto attacked = runner.run(imap);
  EXPECT_LT(attacked.victim_eval.success_rate,
            clean.victim_eval.success_rate + 0.15);
  std::filesystem::remove_all(cfg.zoo_dir);
}

TEST(Integration, MultiAgentPipelineSmoke) {
  const auto game = env::make_multiagent_env("YouShallNotPass");
  Rng rng(7);
  env::VictimSideEnv tenv(*game, env::victim_training_pool("YouShallNotPass"));
  rl::PpoOptions ppo;
  ppo.steps_per_iter = 1024;
  rl::PpoTrainer victim_trainer(tenv, ppo, rng.split(1));
  victim_trainer.train(20'000);
  auto victim_policy = victim_trainer.policy();
  const auto victim = core::Zoo::as_fn(victim_policy);

  core::ImapOptions opts;
  opts.reg.type = core::RegularizerType::PC;
  opts.bias_reduction = true;
  opts.ppo.steps_per_iter = 1024;
  core::ImapTrainer attacker(*game, victim, opts, rng.split(2));
  attacker.train(8'192);

  Rng erng(29);
  const auto eval = attack::evaluate_opponent_attack(
      *game, victim, attacker.adversary(), 30, erng);
  EXPECT_GE(eval.success_rate, 0.0);
  EXPECT_LE(eval.success_rate, 1.0);
}

TEST(Integration, CheckpointedVictimBehavesIdentically) {
  const auto env = env::make_env("Walker2d");
  Rng rng(7);
  auto policy = defense::train_victim(*env, defense::DefenseKind::Vanilla,
                                      8192, {}, rng.split(1));
  const std::string path = "/tmp/imap_test_integration.pol";
  ASSERT_TRUE(nn::save_policy(path, policy));
  const auto loaded = nn::load_policy(path);
  ASSERT_TRUE(loaded.has_value());

  Rng e1(31), e2(31);
  const auto a = attack::evaluate_attack(
      *env, core::Zoo::as_fn(policy),
      attack::make_null_attack(env->obs_dim()), 0.05, 5, e1);
  const auto b = attack::evaluate_attack(
      *env, core::Zoo::as_fn(*loaded),
      attack::make_null_attack(env->obs_dim()), 0.05, 5, e2);
  EXPECT_DOUBLE_EQ(a.returns.mean, b.returns.mean);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imap
