#include <gtest/gtest.h>

#include <filesystem>

#include "core/zoo.h"
#include "env/registry.h"
#include "temp_dir.h"

namespace imap::core {
namespace {

class ZooTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = imap::testing::unique_temp_dir("imap_test_zoo");
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ZooTest, TrainsAndCachesVictim) {
  // A microscopic scale keeps this a smoke test of the train→save→load
  // pipeline, not of victim quality.
  Zoo zoo(dir_, /*scale=*/0.01, /*seed=*/7);
  const auto v1 = zoo.victim("Hopper", "PPO");
  EXPECT_EQ(v1.obs_dim(), 11u);
  // Second call must come from the cache: identical parameters.
  const auto v2 = zoo.victim("Hopper", "PPO");
  EXPECT_EQ(v1.flat_params(), v2.flat_params());
  // Exactly one checkpoint file appeared.
  int files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir_))
    ++files;
  EXPECT_EQ(files, 1);
}

TEST_F(ZooTest, SparseTasksShareTheirDenseVictim) {
  Zoo zoo(dir_, 0.01, 7);
  const auto dense = zoo.victim("Hopper", "PPO");
  const auto sparse = zoo.victim("SparseHopper", "PPO");
  // Same training env ⇒ same cached checkpoint.
  EXPECT_EQ(dense.flat_params(), sparse.flat_params());
}

TEST_F(ZooTest, DistinctDefensesAreDistinctVictims) {
  Zoo zoo(dir_, 0.01, 7);
  const auto vanilla = zoo.victim("Hopper", "PPO");
  const auto sa = zoo.victim("Hopper", "SA");
  EXPECT_NE(vanilla.flat_params(), sa.flat_params());
}

TEST_F(ZooTest, DeterministicAcrossZooInstances) {
  Zoo zoo_a(dir_, 0.01, 7);
  const auto v1 = zoo_a.victim("Walker2d", "PPO");
  std::filesystem::remove_all(dir_);
  Zoo zoo_b(dir_, 0.01, 7);
  const auto v2 = zoo_b.victim("Walker2d", "PPO");
  EXPECT_EQ(v1.flat_params(), v2.flat_params());
}

TEST_F(ZooTest, SeedChangesVictim) {
  Zoo zoo_a(dir_ + "_a", 0.01, 7);
  Zoo zoo_b(dir_ + "_b", 0.01, 8);
  const auto v1 = zoo_a.victim("Hopper", "PPO");
  const auto v2 = zoo_b.victim("Hopper", "PPO");
  EXPECT_NE(v1.flat_params(), v2.flat_params());
  std::filesystem::remove_all(dir_ + "_a");
  std::filesystem::remove_all(dir_ + "_b");
}

TEST_F(ZooTest, GameVictimMatchesGameShape) {
  Zoo zoo(dir_, 0.01, 7);
  const auto v = zoo.game_victim("YouShallNotPass");
  const auto game = env::make_multiagent_env("YouShallNotPass");
  EXPECT_EQ(v.obs_dim(), game->victim_obs_dim());
  EXPECT_EQ(v.act_dim(), game->victim_act_dim());
}

TEST_F(ZooTest, AsFnIsFrozenDeterministicSnapshot) {
  Zoo zoo(dir_, 0.01, 7);
  auto v = zoo.victim("Hopper", "PPO");
  const auto fn = Zoo::as_fn(v);
  Rng rng(3);
  const auto obs = rng.normal_vec(11, 0.0, 0.1);
  const auto a = fn(obs);
  // Mutating the original policy must not affect the snapshot.
  for (auto& w : v.net().params()) w = 0.0;
  EXPECT_EQ(fn(obs), a);
}

TEST_F(ZooTest, VictimStepBudgetsScale) {
  Zoo big(dir_ + "_big", 1.0, 7);
  Zoo small(dir_ + "_small", 0.1, 7);
  EXPECT_GT(big.victim_steps("Hopper"), small.victim_steps("Hopper"));
  EXPECT_GE(small.victim_steps("Hopper"), 4096);
  // The slow learners get the larger budget.
  EXPECT_GT(big.victim_steps("HalfCheetah"), big.victim_steps("Hopper"));
  std::filesystem::remove_all(dir_ + "_big");
  std::filesystem::remove_all(dir_ + "_small");
}

}  // namespace
}  // namespace imap::core
