#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/check.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/table.h"

namespace imap {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = Rng(7).split(1);
  EXPECT_DOUBLE_EQ(c1.uniform(), c1_again.uniform());
  EXPECT_NE(c1.uniform(), c2.uniform());
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= x == 0;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  const auto v = rng.normal_vec(20000, 1.5, 2.0);
  EXPECT_NEAR(mean(v), 1.5, 0.1);
  EXPECT_NEAR(stddev(v), 2.0, 0.1);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, RunningStatMatchesBatch) {
  Rng rng(5);
  const auto xs = rng.normal_vec(500, -1.0, 3.0);
  RunningStat rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  // RunningStat reports population variance; convert the sample stddev.
  const double pop_var = stddev(xs) * stddev(xs) * (499.0 / 500.0);
  EXPECT_NEAR(rs.variance(), pop_var, 1e-6);
}

TEST(Stats, SummarizeCountsEpisodes) {
  const auto s = summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.episodes, 3u);
}

TEST(Table, FormatsAlignedAndCsv) {
  Table t({"a", "b"});
  t.add_row({"x", Table::pm(1.23456, 0.5, 2)});
  t.add_row({"longer", "cell,with,commas"});
  const auto text = t.to_string();
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("1.23 ± 0.50"), std::string::npos);
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("\"cell,with,commas\""), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Serialize, RoundTripsThroughFile) {
  const std::string path = "/tmp/imap_test_roundtrip.bin";
  BinaryWriter w;
  w.write_u64(123);
  w.write_i64(-77);
  w.write_f64(3.14159);
  w.write_string("hello world");
  w.write_vec({1.0, -2.0, 3.5});
  ASSERT_TRUE(w.save(path));

  BinaryReader r;
  ASSERT_TRUE(BinaryReader::load(path, r));
  EXPECT_EQ(r.read_u64(), 123u);
  EXPECT_EQ(r.read_i64(), -77);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_vec(), (std::vector<double>{1.0, -2.0, 3.5}));
  EXPECT_TRUE(r.exhausted());
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse) {
  BinaryReader r;
  EXPECT_FALSE(BinaryReader::load("/tmp/definitely_not_here.imap", r));
}

TEST(Serialize, BadMagicThrows) {
  const std::string path = "/tmp/imap_test_badmagic.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTAMAGICHEADERXXXXXXXX", f);
    std::fclose(f);
  }
  BinaryReader r;
  EXPECT_THROW(BinaryReader::load(path, r), CheckError);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedReadThrows) {
  BinaryWriter w;
  w.write_u64(1);
  BinaryReader r(std::vector<std::uint8_t>(w.buffer()));
  r.read_u64();
  EXPECT_THROW(r.read_f64(), CheckError);
}

TEST(Config, ScaledClampsToMinimum) {
  BenchConfig cfg;
  cfg.scale = 0.001;
  EXPECT_EQ(cfg.scaled(100, 5), 5);
  cfg.scale = 2.0;
  EXPECT_EQ(cfg.scaled(100), 200);
}

TEST(Config, EnvParsing) {
  ::setenv("IMAP_TEST_DOUBLE", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("IMAP_TEST_DOUBLE", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(env_double("IMAP_TEST_MISSING", 1.0), 1.0);
  ::setenv("IMAP_TEST_JUNK", "abc", 1);
  EXPECT_DOUBLE_EQ(env_double("IMAP_TEST_JUNK", 4.0), 4.0);
  EXPECT_EQ(env_string("IMAP_TEST_MISSING", "dflt"), "dflt");
}

}  // namespace
}  // namespace imap
