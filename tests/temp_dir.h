#pragma once

#include <unistd.h>

#include <string>

namespace imap::testing {

/// Per-process unique /tmp path. gtest_discover_tests registers every test
/// case as its own ctest entry, so under `ctest -j` two cases of the same
/// fixture run in parallel PROCESSES — a fixed path means one process's
/// TearDown deletes the other's files mid-run. Suffixing the pid makes each
/// ctest process self-contained (cases within a process run sequentially).
inline std::string unique_temp_dir(const std::string& stem) {
  return "/tmp/" + stem + "_" + std::to_string(::getpid());
}

}  // namespace imap::testing
