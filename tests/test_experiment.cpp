#include <gtest/gtest.h>

#include <filesystem>

#include "common/check.h"
#include "core/experiment.h"
#include "temp_dir.h"

namespace imap::core {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.zoo_dir = imap::testing::unique_temp_dir("imap_test_exp");
    cfg_.scale = 0.01;  // smoke-scale budgets
    cfg_.seed = 7;
    std::filesystem::remove_all(cfg_.zoo_dir);
  }
  void TearDown() override { std::filesystem::remove_all(cfg_.zoo_dir); }
  BenchConfig cfg_;
};

TEST(AttackKindNames, RoundTripAndClassification) {
  EXPECT_EQ(to_string(AttackKind::SaRl), "SA-RL");
  EXPECT_EQ(to_string(AttackKind::ImapPC), "IMAP-PC");
  EXPECT_TRUE(is_imap(AttackKind::ImapR));
  EXPECT_FALSE(is_imap(AttackKind::Random));
  EXPECT_EQ(imap_attacks().size(), 4u);
  EXPECT_EQ(regularizer_of(AttackKind::ImapD), RegularizerType::D);
  EXPECT_THROW(regularizer_of(AttackKind::SaRl), CheckError);
}

TEST_F(ExperimentTest, NoAttackProducesCleanEvaluation) {
  ExperimentRunner runner(cfg_);
  AttackPlan plan;
  plan.env_name = "FetchReach";
  plan.attack = AttackKind::None;
  plan.eval_episodes = 10;
  const auto out = runner.run(plan);
  EXPECT_EQ(out.victim_eval.episode_returns.size(), 10u);
  EXPECT_TRUE(out.curve.empty());
}

TEST_F(ExperimentTest, ImapAttackProducesCurve) {
  ExperimentRunner runner(cfg_);
  AttackPlan plan;
  plan.env_name = "FetchReach";
  plan.attack = AttackKind::ImapPC;
  plan.attack_steps = 4096;
  plan.eval_episodes = 5;
  const auto out = runner.run(plan);
  EXPECT_FALSE(out.curve.empty());
  EXPECT_EQ(out.curve.back().steps, 4096);
}

TEST_F(ExperimentTest, ResultsAreCachedOnDisk) {
  ExperimentRunner runner(cfg_);
  AttackPlan plan;
  plan.env_name = "FetchReach";
  plan.attack = AttackKind::SaRl;
  plan.attack_steps = 4096;
  plan.eval_episodes = 5;
  const auto first = runner.run(plan);
  ASSERT_TRUE(std::filesystem::exists(cfg_.zoo_dir + "/results"));

  // A fresh runner must serve the identical result from the cache.
  ExperimentRunner runner2(cfg_);
  const auto second = runner2.run(plan);
  EXPECT_DOUBLE_EQ(second.victim_eval.returns.mean,
                   first.victim_eval.returns.mean);
  EXPECT_EQ(second.curve.size(), first.curve.size());
  EXPECT_EQ(second.victim_eval.episode_returns,
            first.victim_eval.episode_returns);
}

TEST_F(ExperimentTest, CacheKeySeparatesPlans) {
  ExperimentRunner runner(cfg_);
  AttackPlan a, b;
  a.env_name = b.env_name = "FetchReach";
  a.attack = b.attack = AttackKind::ImapPC;
  b.bias_reduction = true;
  EXPECT_NE(runner.cache_key(a, 1000, 10), runner.cache_key(b, 1000, 10));
  AttackPlan c = a;
  c.eta = 2.0;
  EXPECT_NE(runner.cache_key(a, 1000, 10), runner.cache_key(c, 1000, 10));
  EXPECT_NE(runner.cache_key(a, 1000, 10), runner.cache_key(a, 2000, 10));
}

TEST_F(ExperimentTest, DefaultBudgetsScaleAndFloor) {
  ExperimentRunner runner(cfg_);
  EXPECT_GE(runner.default_attack_steps("Hopper"), 4096);
  EXPECT_GE(runner.default_eval_episodes("Hopper"), 10);
  BenchConfig big = cfg_;
  big.scale = 1.0;
  ExperimentRunner full(big);
  EXPECT_GT(full.default_attack_steps("Hopper"),
            runner.default_attack_steps("Hopper"));
}

TEST_F(ExperimentTest, TrivialScenarioKeepsBaselineCacheKeys) {
  ExperimentRunner runner(cfg_);
  AttackPlan base;
  base.env_name = "FetchReach";
  base.attack = AttackKind::ImapPC;
  // Spelling the baseline as a trivial scenario (any casing) must normalize
  // to the exact legacy plan — same cache key, same rng stream, same cell.
  AttackPlan scn;
  scn.scenario = "fetchreach";
  scn.attack = AttackKind::ImapPC;
  const auto norm = runner.normalize_plan(scn);
  EXPECT_EQ(norm.env_name, "FetchReach");
  EXPECT_TRUE(norm.scenario.empty());
  EXPECT_EQ(runner.cache_key(norm, 1000, 10), runner.cache_key(base, 1000, 10));
}

TEST_F(ExperimentTest, ScenarioPlansGetDistinctKeysAndExplicitThreat) {
  ExperimentRunner runner(cfg_);
  AttackPlan base;
  base.env_name = "FetchReach";
  base.attack = AttackKind::SaRl;
  // A channel scenario is a different cell than the baseline...
  AttackPlan scn;
  scn.scenario = "fetchreach+obs_delay:2";
  scn.attack = AttackKind::SaRl;
  const auto norm = runner.normalize_plan(scn);
  // ...and the implicit attack channel becomes explicit in its identity.
  EXPECT_EQ(norm.scenario, "FetchReach+obs_perturb:0.1+obs_delay:2");
  EXPECT_EQ(norm.env_name, "FetchReach");
  EXPECT_NE(runner.cache_key(norm, 1000, 10), runner.cache_key(base, 1000, 10));
  // Equal scenarios, however spelled, share a key.
  AttackPlan respelled;
  respelled.scenario = "FETCHREACH+obs_delay:2+obs_perturb:0.1";
  respelled.attack = AttackKind::SaRl;
  EXPECT_EQ(runner.cache_key(runner.normalize_plan(respelled), 1000, 10),
            runner.cache_key(norm, 1000, 10));
}

TEST_F(ExperimentTest, ScenarioAttackRunsAndCaches) {
  ExperimentRunner runner(cfg_);
  AttackPlan plan;
  plan.scenario = "fetchreach+obs_perturb:0.1+dr[budget:0.5..1]+budget:0.4@5";
  plan.attack = AttackKind::SaRl;
  plan.attack_steps = 4096;
  plan.eval_episodes = 5;
  const auto out = runner.run(plan);
  EXPECT_FALSE(out.curve.empty());
  EXPECT_EQ(out.victim_eval.episode_returns.size(), 5u);

  // Warm re-run from a fresh runner: identical bits from the result cache.
  ExperimentRunner runner2(cfg_);
  const auto again = runner2.run(plan);
  EXPECT_EQ(again.victim_eval.episode_returns,
            out.victim_eval.episode_returns);
  EXPECT_EQ(again.curve.size(), out.curve.size());
}

TEST_F(ExperimentTest, ScenarioNoAttackEvaluatesThroughChannels) {
  ExperimentRunner runner(cfg_);
  AttackPlan plan;
  plan.scenario = "hopper+obs_noise:0.2@3";
  plan.attack = AttackKind::None;
  plan.eval_episodes = 10;
  const auto noisy = runner.run(plan);
  EXPECT_EQ(noisy.victim_eval.episode_returns.size(), 10u);
  EXPECT_TRUE(noisy.curve.empty());

  AttackPlan clean;
  clean.env_name = "Hopper";
  clean.attack = AttackKind::None;
  clean.eval_episodes = 10;
  const auto base = runner.run(clean);
  // The noise channel actually reaches the victim: different episodes.
  EXPECT_NE(noisy.victim_eval.episode_returns,
            base.victim_eval.episode_returns);
}

TEST_F(ExperimentTest, MultiAgentPlanRoutesToOpponentAttack) {
  ExperimentRunner runner(cfg_);
  AttackPlan plan;
  plan.env_name = "YouShallNotPass";
  plan.attack = AttackKind::ApMarl;
  plan.attack_steps = 4096;
  plan.eval_episodes = 10;
  const auto out = runner.run(plan);
  EXPECT_GE(out.asr(), 0.0);
  EXPECT_LE(out.asr(), 1.0);
  EXPECT_FALSE(out.curve.empty());
}

TEST_F(ExperimentTest, SingleAgentRejectsApMarl) {
  ExperimentRunner runner(cfg_);
  AttackPlan plan;
  plan.env_name = "Hopper";
  plan.attack = AttackKind::ApMarl;
  plan.attack_steps = 4096;
  plan.eval_episodes = 5;
  EXPECT_THROW(runner.run(plan), CheckError);
}

}  // namespace
}  // namespace imap::core
