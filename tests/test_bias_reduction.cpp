#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/bias_reduction.h"

namespace imap::core {
namespace {

TEST(BiasReduction, DisabledKeepsFixedTau) {
  BiasReduction br(false, 1.0, 0.7);
  EXPECT_DOUBLE_EQ(br.tau(), 0.7);
  br.observe(-1.0);
  br.observe(-5.0);  // severe degradation — still fixed
  EXPECT_DOUBLE_EQ(br.tau(), 0.7);
}

TEST(BiasReduction, StartsAtTauOne) {
  BiasReduction br(true, 1.0);
  EXPECT_DOUBLE_EQ(br.tau(), 1.0);  // λ₀ = 0 ⇒ τ₀ = 1 (Sec. 5.4)
  EXPECT_DOUBLE_EQ(br.lambda(), 0.0);
}

TEST(BiasReduction, FirstObservationOnlySetsBaseline) {
  BiasReduction br(true, 1.0);
  br.observe(-0.9);
  EXPECT_DOUBLE_EQ(br.tau(), 1.0);
}

TEST(BiasReduction, DegradationGrowsLambdaAndShrinksTau) {
  BiasReduction br(true, 2.0);
  br.observe(-0.2);
  br.observe(-0.5);  // J_AP dropped by 0.3 ⇒ λ += η·0.3 = 0.6
  EXPECT_NEAR(br.lambda(), 0.6, 1e-12);
  EXPECT_NEAR(br.tau(), 1.0 / 1.6, 1e-12);
}

TEST(BiasReduction, ImprovementNeverPushesLambdaNegative) {
  BiasReduction br(true, 1.0);
  br.observe(-0.9);
  br.observe(-0.1);  // big improvement
  EXPECT_DOUBLE_EQ(br.lambda(), 0.0);  // clamped at the dual-feasible floor
  EXPECT_DOUBLE_EQ(br.tau(), 1.0);
}

TEST(BiasReduction, RecoveryUnwindsLambda) {
  BiasReduction br(true, 1.0);
  br.observe(-0.1);
  br.observe(-0.6);  // λ = 0.5
  br.observe(-0.3);  // improvement of 0.3 ⇒ λ = 0.2
  EXPECT_NEAR(br.lambda(), 0.2, 1e-12);
  br.observe(0.0);   // improvement of 0.3 ⇒ λ = 0 (clamped)
  EXPECT_DOUBLE_EQ(br.lambda(), 0.0);
}

TEST(BiasReduction, TauAlwaysInUnitInterval) {
  BiasReduction br(true, 5.0);
  Rng rng(3);
  double j = -0.5;
  br.observe(j);
  for (int i = 0; i < 1000; ++i) {
    j += rng.normal(0.0, 0.2);
    br.observe(j);
    EXPECT_GT(br.tau(), 0.0);
    EXPECT_LE(br.tau(), 1.0);
    EXPECT_GE(br.lambda(), 0.0);
  }
}

TEST(BiasReduction, LargerEtaReactsFaster) {
  BiasReduction slow(true, 0.5), fast(true, 4.0);
  for (auto* br : {&slow, &fast}) {
    br->observe(-0.1);
    br->observe(-0.4);
  }
  EXPECT_GT(fast.lambda(), slow.lambda());
  EXPECT_LT(fast.tau(), slow.tau());
}

TEST(BiasReduction, RejectsNegativeEta) {
  EXPECT_THROW(BiasReduction(true, -1.0), CheckError);
}

}  // namespace
}  // namespace imap::core
