#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/rnd.h"

namespace imap::core {
namespace {

rl::RolloutBuffer cluster(double center, std::size_t n, Rng& rng) {
  rl::RolloutBuffer buf;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = rng.normal_vec(3, 0.0, 0.1);
    s[0] += center;
    buf.add(std::move(s), {0.0}, 0.0, 0.0, 0.0);
  }
  return buf;
}

TEST(Rnd, NoveltyIsNonNegative) {
  Rng rng(3);
  RndNovelty rnd(3, 8, rng);
  for (int i = 0; i < 20; ++i)
    EXPECT_GE(rnd.novelty(rng.normal_vec(3)), 0.0);
}

TEST(Rnd, FamiliarityReducesNovelty) {
  Rng rng(5);
  RndNovelty rnd(3, 8, rng);
  auto buf = cluster(0.0, 256, rng);
  const double before = mean([&] {
    std::vector<double> v;
    for (const auto& s : buf.obs) v.push_back(rnd.novelty(s));
    return v;
  }());
  for (int pass = 0; pass < 30; ++pass) rnd.update(buf);
  const double after = mean([&] {
    std::vector<double> v;
    for (const auto& s : buf.obs) v.push_back(rnd.novelty(s));
    return v;
  }());
  EXPECT_LT(after, 0.5 * before);
}

TEST(Rnd, NovelRegionStaysNovel) {
  Rng rng(7);
  RndNovelty rnd(3, 8, rng);
  auto buf = cluster(0.0, 256, rng);
  for (int pass = 0; pass < 30; ++pass) rnd.update(buf);

  // States far from the training cluster keep a larger error than the
  // cluster itself.
  double familiar = 0.0, novel = 0.0;
  Rng qrng(9);
  for (int i = 0; i < 32; ++i) {
    auto near = qrng.normal_vec(3, 0.0, 0.1);
    auto far = qrng.normal_vec(3, 0.0, 0.1);
    far[0] += 4.0;
    familiar += rnd.novelty(near);
    novel += rnd.novelty(far);
  }
  EXPECT_GT(novel, familiar);
}

TEST(Rnd, ComputeFillsIntrinsicChannel) {
  Rng rng(11);
  RndNovelty rnd(3, 8, rng);
  auto buf = cluster(0.0, 64, rng);
  rnd.compute(buf);
  EXPECT_GT(mean(buf.rew_i), 0.0);
}

TEST(Rnd, ExhibitsTheForgettingProblem) {
  // The failure mode the paper cites as the reason to prefer KNN: after the
  // predictor is re-trained on a NEW region, the OLD region's novelty creeps
  // back up (catastrophic forgetting), which would re-reward already
  // explored states.
  Rng rng(13);
  RndNovelty rnd(3, 8, rng);
  auto region_a = cluster(0.0, 256, rng);
  for (int pass = 0; pass < 150; ++pass) rnd.update(region_a);
  auto mean_novelty_a = [&] {
    double acc = 0.0;
    for (int i = 0; i < 64; ++i) acc += rnd.novelty(region_a.obs[i]);
    return acc / 64.0;
  };
  const double a_when_fresh = mean_novelty_a();

  auto region_b = cluster(6.0, 256, rng);
  for (int pass = 0; pass < 150; ++pass) rnd.update(region_b);
  const double a_after_b = mean_novelty_a();

  EXPECT_GT(a_after_b, 1.2 * a_when_fresh);
}

}  // namespace
}  // namespace imap::core
