// QuantizedMlp + victim-quant serving path (nn/quant.h): accuracy is
// tolerance-pinned against the fp64 network, the quantized forward is
// bit-identical across batch sizes and kernel backends, staleness tracking
// follows the Mlp weight version, and PolicyHandle routes BOTH query() and
// query_batch() through the same quantized network so the lockstep-vs-serial
// invariants of the rollout engine survive quant mode.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/batch.h"
#include "nn/gaussian.h"
#include "nn/kernel_backend.h"
#include "nn/mlp.h"
#include "nn/quant.h"
#include "rl/policy_handle.h"

namespace {

using imap::Rng;
using imap::nn::Batch;
using imap::nn::GaussianPolicy;
using imap::nn::Mlp;
using imap::nn::QuantizedMlp;
using imap::nn::ScopedVictimQuant;
using imap::rl::PolicyHandle;

Batch random_batch(std::size_t rows, std::size_t dim, Rng& rng) {
  Batch b(rows, dim);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < dim; ++c) b(r, c) = rng.normal(0.0, 1.0);
  return b;
}

// Policy-scale networks (the victims this path serves): locomotion obs
// widths, two tanh hidden layers, small action heads.
Mlp victim_net(Rng& rng) { return Mlp({11, 64, 64, 3}, rng); }

TEST(QuantizedMlp, ActionErrorWithinPinnedTolerance) {
  Rng rng(101);
  Mlp net = victim_net(rng);
  const QuantizedMlp qnet(net);
  Mlp::Workspace ws, qws;
  const Batch obs = random_batch(64, 11, rng);
  const Batch& exact = net.forward_batch(obs, ws);
  const Batch& quant = qnet.forward_batch(obs, qws);
  ASSERT_EQ(quant.rows(), exact.rows());
  ASSERT_EQ(quant.dim(), exact.dim());
  double max_err = 0.0;
  for (std::size_t r = 0; r < exact.rows(); ++r)
    for (std::size_t c = 0; c < exact.dim(); ++c)
      max_err = std::max(max_err, std::abs(quant(r, c) - exact(r, c)));
  EXPECT_LE(max_err, imap::nn::kQuantActionTolerance);
  EXPECT_GT(max_err, 0.0);  // it IS an approximation — exact 0 means the
                            // quant path silently served fp64
}

TEST(QuantizedMlp, BatchedRowsMatchSingleSampleBitwise) {
  Rng rng(103);
  Mlp net = victim_net(rng);
  const QuantizedMlp qnet(net);
  Mlp::Workspace ws;
  const Batch obs = random_batch(17, 11, rng);
  const Batch& batched = qnet.forward_batch(obs, ws);
  for (std::size_t r = 0; r < obs.rows(); ++r) {
    std::vector<double> row(obs.row(r), obs.row(r) + obs.dim());
    const auto single = qnet.forward(row);
    for (std::size_t c = 0; c < qnet.out_dim(); ++c)
      ASSERT_EQ(single[c], batched(r, c)) << "row " << r << " dim " << c;
  }
}

TEST(QuantizedMlp, BitIdenticalAcrossKernelBackends) {
  Rng rng(107);
  Mlp net = victim_net(rng);
  const QuantizedMlp qnet(net);
  const Batch obs = random_batch(32, 11, rng);

  Mlp::Workspace ref_ws;
  std::vector<double> ref;
  {
    imap::nn::kernel::ScopedBackend forced("scalar");
    ASSERT_TRUE(forced.activated());
    const Batch& out = qnet.forward_batch(obs, ref_ws);
    ref.assign(out.data(), out.data() + out.rows() * out.dim());
  }
  for (const auto* be : imap::nn::kernel::all_backends()) {
    if (!be->supported()) continue;
    imap::nn::kernel::ScopedBackend forced(be->name);
    ASSERT_TRUE(forced.activated());
    Mlp::Workspace ws;
    const Batch& out = qnet.forward_batch(obs, ws);
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(ref[i], out.data()[i]) << be->name << ", element " << i;
  }
}

TEST(QuantizedMlp, StaleForTracksWeightVersion) {
  Rng rng(109);
  Mlp net = victim_net(rng);
  const QuantizedMlp qnet(net);
  EXPECT_FALSE(qnet.stale_for(net));
  net.params()[0] += 0.5;  // non-const access bumps the version
  EXPECT_TRUE(qnet.stale_for(net));

  Rng rng2(109);
  Mlp other = victim_net(rng2);
  EXPECT_TRUE(qnet.stale_for(other));  // different object, same weights
}

TEST(VictimQuant, ScopedToggleOverridesEnvironment) {
  {
    ScopedVictimQuant on(true);
    EXPECT_TRUE(imap::nn::victim_quant_enabled());
    {
      ScopedVictimQuant off(false);
      EXPECT_FALSE(imap::nn::victim_quant_enabled());
    }
    EXPECT_TRUE(imap::nn::victim_quant_enabled());
  }
}

TEST(VictimQuant, HandleModeFixedAtConstruction) {
  Rng rng(113);
  auto policy = std::make_shared<const GaussianPolicy>(
      11, 3, std::vector<std::size_t>{32, 32}, rng);

  PolicyHandle plain(policy);
  EXPECT_FALSE(plain.quantized());

  ScopedVictimQuant on(true);
  PolicyHandle quant(policy);
  EXPECT_TRUE(quant.quantized());
  // The toggle is consulted at construction only — the earlier handle keeps
  // serving fp64 even while the scope is active.
  EXPECT_FALSE(plain.quantized());
}

TEST(VictimQuant, QueryMatchesQueryBatchBitwiseInQuantMode) {
  Rng rng(127);
  auto policy = std::make_shared<const GaussianPolicy>(
      11, 3, std::vector<std::size_t>{32, 32}, rng);
  ScopedVictimQuant on(true);
  PolicyHandle handle(policy);
  ASSERT_TRUE(handle.quantized());

  const Batch obs = random_batch(9, 11, rng);
  imap::nn::Mlp::Workspace ws;
  const Batch& batched = handle.query_batch(obs, ws);
  for (std::size_t r = 0; r < obs.rows(); ++r) {
    std::vector<double> row(obs.row(r), obs.row(r) + obs.dim());
    const auto single = handle.query(row);
    ASSERT_EQ(single.size(), batched.dim());
    for (std::size_t c = 0; c < single.size(); ++c)
      ASSERT_EQ(single[c], batched(r, c)) << "row " << r << " dim " << c;
  }
}

TEST(VictimQuant, QuantizedQueriesStayWithinToleranceOfFp64) {
  Rng rng(131);
  auto policy = std::make_shared<const GaussianPolicy>(
      11, 3, std::vector<std::size_t>{32, 32}, rng);
  PolicyHandle exact(policy);
  ScopedVictimQuant on(true);
  PolicyHandle quant(policy);

  double max_err = 0.0;
  for (int i = 0; i < 32; ++i) {
    std::vector<double> obs(11);
    for (auto& v : obs) v = rng.normal(0.0, 1.0);
    const auto a = exact.query(obs);
    const auto b = quant.query(obs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c)
      max_err = std::max(max_err, std::abs(a[c] - b[c]));
  }
  EXPECT_LE(max_err, imap::nn::kQuantActionTolerance);
}

TEST(VictimQuant, SnapshotRespectsToggle) {
  Rng rng(137);
  GaussianPolicy policy(11, 3, {32, 32}, rng);
  ScopedVictimQuant on(true);
  PolicyHandle handle = PolicyHandle::snapshot(policy);
  EXPECT_TRUE(handle.quantized());
  EXPECT_TRUE(handle.batched());
}

}  // namespace
