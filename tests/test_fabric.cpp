// The multi-process fabric contract: framed-Archive channels, crash-safe
// file locks, the rollout shard wire codec, sharded collection / gradient
// bit-identity for any process count, snapshot parity with a live fabric,
// DAG-scheduled grids (including the kill-one-worker → re-dispatch → resume
// drill) and atomic concurrent store writes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attack/threat_model.h"
#include "common/check.h"
#include "common/proc.h"
#include "common/serialize.h"
#include "core/experiment_dag.h"
#include "env/multiagent.h"
#include "env/registry.h"
#include "nn/gaussian.h"
#include "rl/ppo.h"
#include "scenario/scenario_env.h"
#include "scenario/spec.h"
#include "temp_dir.h"

namespace imap {
namespace {

// ---------------------------------------------------------------------------
// Channel framing
// ---------------------------------------------------------------------------

TEST(Channel, RoundTripThroughWorker) {
  auto w = proc::WorkerProcess::spawn([](proc::Channel& ch) {
    ArchiveReader req;
    while (ch.recv(req)) {
      ArchiveWriter rep;
      auto r = req.section("ping/v");
      rep.section("echo/v").write_vec(r.read_vec());
      if (!ch.send(rep)) break;
    }
  });
  const std::vector<double> payload{1.5, -2.25, 1e300, 0.0};
  ArchiveWriter msg;
  msg.section("ping/v").write_vec(payload);
  ASSERT_TRUE(w.channel().send(msg));
  ArchiveReader rep;
  ASSERT_TRUE(w.channel().recv(rep));
  auto r = rep.section("echo/v");
  EXPECT_EQ(r.read_vec(), payload);
  EXPECT_EQ(w.join(), 0);
}

TEST(Channel, CleanEofWhenChildExits) {
  auto w = proc::WorkerProcess::spawn([](proc::Channel&) {});
  ArchiveReader rep;
  EXPECT_FALSE(w.channel().recv(rep));  // EOF, not an exception
  EXPECT_EQ(w.join(), 0);
}

TEST(Channel, TruncatedFrameThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  proc::Channel ch(fds[0], -1);
  // Header promises a 32-byte frame; only 8 bytes arrive before EOF.
  const std::uint8_t hdr[8] = {32, 0, 0, 0, 0, 0, 0, 0};
  const std::uint8_t junk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_EQ(::write(fds[1], hdr, 8), 8);
  ASSERT_EQ(::write(fds[1], junk, 8), 8);
  ::close(fds[1]);
  ArchiveReader out;
  EXPECT_THROW(ch.recv(out), CheckError);
}

TEST(Channel, CorruptPayloadThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  proc::Channel ch(fds[0], -1);
  // A complete 16-byte frame whose payload is not a valid archive.
  const std::uint8_t hdr[8] = {16, 0, 0, 0, 0, 0, 0, 0};
  std::uint8_t junk[16];
  for (int i = 0; i < 16; ++i) junk[i] = static_cast<std::uint8_t>(0xA0 + i);
  ASSERT_EQ(::write(fds[1], hdr, 8), 8);
  ASSERT_EQ(::write(fds[1], junk, 16), 16);
  ::close(fds[1]);
  ArchiveReader out;
  EXPECT_THROW(ch.recv(out), CheckError);
}

TEST(WorkerProcess, TerminateReapsKilledChild) {
  auto w = proc::WorkerProcess::spawn([](proc::Channel& ch) {
    ArchiveReader req;
    while (ch.recv(req)) {
    }
  });
  ASSERT_TRUE(w.running());
  w.terminate();
  EXPECT_FALSE(w.running());
}

// ---------------------------------------------------------------------------
// FileLock
// ---------------------------------------------------------------------------

TEST(FileLock, StaleOwnerIsStolen) {
  const auto dir = testing::unique_temp_dir("fabric_lock_stale");
  std::filesystem::create_directories(dir);
  const auto path = dir + "/cell.lock";
  {
    // A lockfile owned by a pid that cannot exist (beyond any pid_max):
    // the crashed-worker shape, since _exit skips FileLock destructors.
    std::ofstream f(path);
    f << 999999999;
  }
  { proc::FileLock lock(path); }  // must steal promptly, not deadlock
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(FileLock, BlocksUntilHolderReleases) {
  const auto dir = testing::unique_temp_dir("fabric_lock_block");
  std::filesystem::create_directories(dir);
  const auto path = dir + "/cell.lock";
  const auto marker = dir + "/marker";
  auto held = std::make_unique<proc::FileLock>(path);
  auto w = proc::WorkerProcess::spawn([path, marker](proc::Channel& ch) {
    proc::FileLock lock(path);  // blocks until the parent releases
    ArchiveWriter rep;
    rep.section("saw").write_bool(std::filesystem::exists(marker));
    ch.send(rep);
  });
  // The marker exists strictly before the release, so a correctly-blocking
  // child can only ever observe it present.
  { std::ofstream f(marker); f << 1; }
  held.reset();
  ArchiveReader rep;
  ASSERT_TRUE(w.channel().recv(rep));
  EXPECT_TRUE(rep.section("saw").read_bool());
  EXPECT_EQ(w.join(), 0);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Rollout shard wire codec
// ---------------------------------------------------------------------------

void expect_buffers_equal(const rl::RolloutBuffer& a,
                          const rl::RolloutBuffer& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.obs[i], b.obs[i]) << "row " << i;
    EXPECT_EQ(a.act[i], b.act[i]) << "row " << i;
  }
  EXPECT_EQ(a.logp, b.logp);
  EXPECT_EQ(a.rew_e, b.rew_e);
  EXPECT_EQ(a.rew_i, b.rew_i);
  EXPECT_EQ(a.val_e, b.val_e);
  EXPECT_EQ(a.val_i, b.val_i);
  EXPECT_EQ(a.done, b.done);
  EXPECT_EQ(a.boundary, b.boundary);
  EXPECT_EQ(a.last_val_e, b.last_val_e);
  EXPECT_EQ(a.last_val_i, b.last_val_i);
  EXPECT_EQ(a.boundary_at, b.boundary_at);
  EXPECT_EQ(a.episode_returns, b.episode_returns);
  EXPECT_EQ(a.episode_surrogate, b.episode_surrogate);
  EXPECT_EQ(a.episode_lengths, b.episode_lengths);
}

TEST(RolloutCodec, SaveLoadRoundTripsEveryField) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.hidden = {16, 16};
  opts.steps_per_iter = 256;
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  rl::RolloutBuffer buf;
  trainer.collect(buf);
  ASSERT_GT(buf.size(), 0u);

  BinaryWriter w;
  buf.save_state(w);
  BinaryReader r(w.buffer());
  rl::RolloutBuffer decoded;
  decoded.add(std::vector<double>{1.0}, std::vector<double>{2.0}, 0.5, 0.1,
              0.2);  // pre-dirty: load must fully overwrite
  decoded.load_state(r);
  expect_buffers_equal(buf, decoded);

  // append() of a decoded shard must equal append() of the original.
  rl::RolloutBuffer via_wire, in_proc;
  via_wire.append(decoded);
  in_proc.append(buf);
  expect_buffers_equal(in_proc, via_wire);
}

// ---------------------------------------------------------------------------
// Sharded collection + gradient fleet bit-identity
// ---------------------------------------------------------------------------

void expect_identical(const std::vector<rl::IterStats>& a,
                      const std::vector<rl::IterStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean_return, b[i].mean_return) << "iter " << i;
    EXPECT_EQ(a[i].mean_surrogate, b[i].mean_surrogate) << "iter " << i;
    EXPECT_EQ(a[i].episodes, b[i].episodes) << "iter " << i;
    EXPECT_EQ(a[i].policy_loss, b[i].policy_loss) << "iter " << i;
    EXPECT_EQ(a[i].value_loss, b[i].value_loss) << "iter " << i;
    EXPECT_EQ(a[i].approx_kl, b[i].approx_kl) << "iter " << i;
    EXPECT_EQ(a[i].entropy, b[i].entropy) << "iter " << i;
  }
}

std::vector<rl::IterStats> run_procs(const rl::Env& proto,
                                     rl::PpoOptions opts, int procs,
                                     int iters,
                                     std::vector<double>& final_params) {
  opts.num_procs = procs;
  rl::PpoTrainer trainer(proto, opts, Rng(7));
  std::vector<rl::IterStats> out;
  for (int i = 0; i < iters; ++i) out.push_back(trainer.iterate());
  final_params = trainer.policy().flat_params();
  return out;
}

void expect_procs_invariant(const rl::Env& proto, rl::PpoOptions opts) {
  std::vector<double> p1, p2, p4;
  const auto s1 = run_procs(proto, opts, 1, 2, p1);
  const auto s2 = run_procs(proto, opts, 2, 2, p2);
  const auto s4 = run_procs(proto, opts, 4, 2, p4);
  expect_identical(s1, s2);
  expect_identical(s1, s4);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, p4);
}

rl::PpoOptions small_fabric_opts() {
  rl::PpoOptions opts;
  opts.hidden = {16, 16};
  opts.steps_per_iter = 256;
  opts.minibatch = 64;
  opts.epochs = 2;
  opts.num_workers = 4;
  opts.envs_per_worker = 2;
  return opts;
}

TEST(FabricCollect, DenseTaskIdenticalFor1And2And4Procs) {
  const auto inner = env::make_env("Hopper");
  Rng vr(11);
  nn::GaussianPolicy victim(inner->obs_dim(), inner->act_dim(), {16, 16}, vr);
  attack::StatePerturbationEnv proto(*inner, rl::PolicyHandle::snapshot(victim),
                                     env::spec("Hopper").epsilon,
                                     attack::RewardMode::Adversary);
  expect_procs_invariant(proto, small_fabric_opts());
}

TEST(FabricCollect, SparseTaskIdenticalFor1And2And4Procs) {
  const auto inner = env::make_env("SparseHopper");
  Rng vr(11);
  nn::GaussianPolicy victim(inner->obs_dim(), inner->act_dim(), {16, 16}, vr);
  attack::StatePerturbationEnv proto(*inner, rl::PolicyHandle::snapshot(victim),
                                     env::spec("SparseHopper").epsilon,
                                     attack::RewardMode::Adversary);
  expect_procs_invariant(proto, small_fabric_opts());
}

TEST(FabricCollect, OpponentThreatModelIdenticalFor1And2And4Procs) {
  const auto game = env::make_multiagent_env("YouShallNotPass");
  Rng vr(11);
  nn::GaussianPolicy victim(game->victim_obs_dim(), game->victim_act_dim(),
                            {16, 16}, vr);
  attack::OpponentEnv proto(*game, rl::PolicyHandle::snapshot(victim));
  expect_procs_invariant(proto, small_fabric_opts());
}

TEST(FabricCollect, RandomizedScenarioIdenticalForAnyFactorization) {
  // A procedurally randomized scenario (seeded DR + stochastic channels +
  // budget) draws everything from the slot Rng, so its rollouts must stay
  // bit-identical across process counts AND worker×slot splits — 8 global
  // slots as 4×2 @ 1 proc vs 2×4 @ 2 procs vs 4×2 @ 4 procs.
  const auto spec = scenario::parse(
      "hopper+obs_perturb:0.075+obs_delay:2+obs_dropout:0.2+obs_noise:0.05"
      "+budget:0.5+dr[gain:0.9..1.1,mass:0.8..1.2]@7");
  const auto inner = env::make_env(spec.env);
  Rng vr(11);
  nn::GaussianPolicy victim(inner->obs_dim(), inner->act_dim(), {16, 16}, vr);
  const auto proto = scenario::make_scenario_env(
      spec, rl::PolicyHandle::snapshot(victim), attack::RewardMode::Adversary);

  auto opts = small_fabric_opts();
  std::vector<double> p42_1, p24_2, p42_4;
  opts.num_workers = 4;
  opts.envs_per_worker = 2;
  const auto s42_1 = run_procs(*proto, opts, 1, 2, p42_1);
  opts.num_workers = 2;
  opts.envs_per_worker = 4;
  const auto s24_2 = run_procs(*proto, opts, 2, 2, p24_2);
  opts.num_workers = 4;
  opts.envs_per_worker = 2;
  const auto s42_4 = run_procs(*proto, opts, 4, 2, p42_4);
  expect_identical(s42_1, s24_2);
  expect_identical(s42_1, s42_4);
  EXPECT_EQ(p42_1, p24_2);
  EXPECT_EQ(p42_1, p42_4);
}

TEST(FabricCollect, WorkerSlotFactorizationsMatchAcrossProcessCounts) {
  // 8 global slots as 4 workers × 2 slots vs 2 workers × 4 slots, each at
  // every process count — the trace is keyed to the TOTAL slot count only.
  auto env = env::make_env("Hopper");
  auto opts = small_fabric_opts();
  std::vector<double> p42_1, p42_2, p24_1, p24_4;
  opts.num_workers = 4;
  opts.envs_per_worker = 2;
  const auto s42_1 = run_procs(*env, opts, 1, 2, p42_1);
  const auto s42_2 = run_procs(*env, opts, 2, 2, p42_2);
  opts.num_workers = 2;
  opts.envs_per_worker = 4;
  const auto s24_1 = run_procs(*env, opts, 1, 2, p24_1);
  const auto s24_4 = run_procs(*env, opts, 4, 2, p24_4);
  expect_identical(s42_1, s42_2);
  expect_identical(s42_1, s24_1);
  expect_identical(s42_1, s24_4);
  EXPECT_EQ(p42_1, p42_2);
  EXPECT_EQ(p42_1, p24_1);
  EXPECT_EQ(p42_1, p24_4);
}

TEST(FabricGrads, ShardedUpdateIdenticalFor1And2And4Procs) {
  auto env = env::make_env("Hopper");
  auto opts = small_fabric_opts();
  opts.grad_shards = 4;  // fixed shard count keys the bits; procs must not
  expect_procs_invariant(*env, opts);
}

TEST(FabricSnapshot, SnapshotBytesIdenticalWithLiveFabric) {
  const auto dir = testing::unique_temp_dir("fabric_snap");
  std::filesystem::create_directories(dir);
  auto env = env::make_env("Hopper");
  const auto opts = small_fabric_opts();
  const auto snap_of = [&](int procs, const std::string& path) {
    auto o = opts;
    o.num_procs = procs;
    rl::PpoTrainer trainer(*env, o, Rng(7));
    trainer.iterate();
    trainer.iterate();
    ASSERT_TRUE(trainer.snapshot(path));
  };
  snap_of(1, dir + "/p1.snap");
  snap_of(2, dir + "/p2.snap");
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto b1 = slurp(dir + "/p1.snap");
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, slurp(dir + "/p2.snap"));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// DAG scheduler
// ---------------------------------------------------------------------------

std::vector<core::AttackPlan> small_grid() {
  std::vector<core::AttackPlan> plans;
  for (const auto& [env, kind] :
       std::vector<std::pair<std::string, core::AttackKind>>{
           {"Hopper", core::AttackKind::None},
           {"Hopper", core::AttackKind::ImapPC},
           {"SparseHopper", core::AttackKind::ImapSC}}) {
    core::AttackPlan p;
    p.env_name = env;
    p.attack = kind;
    p.attack_steps = 4096;
    p.eval_episodes = 4;
    plans.push_back(p);
  }
  return plans;
}

BenchConfig small_cfg(const std::string& zoo) {
  BenchConfig cfg;
  cfg.scale = 0.001;  // victim budget floors at 4096 steps
  cfg.zoo_dir = zoo;
  cfg.seed = 7;
  cfg.snapshot_every = 1;
  return cfg;
}

void expect_outcomes_equal(const std::vector<core::AttackOutcome>& a,
                           const std::vector<core::AttackOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].completed, b[i].completed) << "plan " << i;
    EXPECT_EQ(a[i].victim_eval.returns.mean, b[i].victim_eval.returns.mean)
        << "plan " << i;
    EXPECT_EQ(a[i].victim_eval.returns.stddev,
              b[i].victim_eval.returns.stddev)
        << "plan " << i;
    EXPECT_EQ(a[i].victim_eval.returns.episodes,
              b[i].victim_eval.returns.episodes)
        << "plan " << i;
    EXPECT_EQ(a[i].victim_eval.success_rate, b[i].victim_eval.success_rate)
        << "plan " << i;
    EXPECT_EQ(a[i].victim_eval.mean_length, b[i].victim_eval.mean_length)
        << "plan " << i;
    EXPECT_EQ(a[i].victim_eval.episode_returns,
              b[i].victim_eval.episode_returns)
        << "plan " << i;
    ASSERT_EQ(a[i].curve.size(), b[i].curve.size()) << "plan " << i;
    for (std::size_t j = 0; j < a[i].curve.size(); ++j) {
      EXPECT_EQ(a[i].curve[j].steps, b[i].curve[j].steps);
      EXPECT_EQ(a[i].curve[j].victim_success, b[i].curve[j].victim_success);
      EXPECT_EQ(a[i].curve[j].tau, b[i].curve[j].tau);
    }
  }
}

TEST(DagScheduler, BuildsDedupedVictimDag) {
  auto cfg = small_cfg(testing::unique_temp_dir("fabric_dag_build"));
  core::ExperimentRunner runner(cfg);
  std::vector<std::size_t> node_of_plan;
  const auto nodes =
      core::build_experiment_dag(runner, small_grid(), node_of_plan);
  // One shared victim (SparseHopper trains on dense Hopper) + 3 attacks.
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].kind, core::DagNode::Kind::Victim);
  int attacks = 0;
  for (const auto& n : nodes)
    if (n.kind == core::DagNode::Kind::Attack) {
      ++attacks;
      ASSERT_EQ(n.deps.size(), 1u);
      EXPECT_EQ(n.deps[0], 0u);
    }
  EXPECT_EQ(attacks, 3);
  EXPECT_EQ(node_of_plan.size(), 3u);
  std::filesystem::remove_all(cfg.zoo_dir);
}

TEST(DagScheduler, TwoProcessGridMatchesSerialRun) {
  const auto base = testing::unique_temp_dir("fabric_dag_eq");
  core::DagOptions serial_opts;
  serial_opts.procs = 1;
  core::DagScheduler serial(small_cfg(base + "_serial"), serial_opts);
  const auto ref = serial.run(small_grid());

  core::DagOptions fabric_opts;
  fabric_opts.procs = 2;
  core::DagScheduler fabric(small_cfg(base + "_fabric"), fabric_opts);
  const auto out = fabric.run(small_grid());
  EXPECT_EQ(fabric.stats().procs, 2);
  EXPECT_GE(fabric.stats().dispatched, 4);
  EXPECT_EQ(fabric.stats().worker_deaths, 0);

  expect_outcomes_equal(ref, out);
  std::filesystem::remove_all(base + "_serial");
  std::filesystem::remove_all(base + "_fabric");
}

TEST(DagScheduler, KilledWorkerIsRedispatchedAndResumesFromSnapshot) {
  const auto base = testing::unique_temp_dir("fabric_dag_crash");
  core::DagOptions serial_opts;
  serial_opts.procs = 1;
  core::DagScheduler serial(small_cfg(base + "_serial"), serial_opts);
  const auto ref = serial.run(small_grid());

  core::DagOptions crash_opts;
  crash_opts.procs = 2;
  crash_opts.crash_nth_attack = 1;  // kill the first attack cell mid-run
  core::DagScheduler fabric(small_cfg(base + "_fabric"), crash_opts);
  const auto out = fabric.run(small_grid());
  EXPECT_GE(fabric.stats().worker_deaths, 1);
  EXPECT_GE(fabric.stats().re_dispatched, 1);

  // The re-dispatched cell resumed from the crashed attempt's snapshot —
  // and still matches the serial reference bit for bit.
  expect_outcomes_equal(ref, out);
  std::filesystem::remove_all(base + "_serial");
  std::filesystem::remove_all(base + "_fabric");
}

TEST(DagScheduler, RandomizedScenarioGridMatchesSerialRun) {
  // A grid mixing a baseline cell with a randomized scenario cell: the
  // scenario cell shares the baseline's victim node (one Hopper train), and
  // the whole grid is 1-vs-N procs invariant bit for bit.
  std::vector<core::AttackPlan> plans;
  core::AttackPlan base;
  base.env_name = "Hopper";
  base.attack = core::AttackKind::None;
  base.eval_episodes = 4;
  plans.push_back(base);
  core::AttackPlan scn;
  scn.scenario = "hopper+obs_perturb:0.075+obs_delay:1+dr[mass:0.9..1.1]@13";
  scn.attack = core::AttackKind::ImapPC;
  scn.attack_steps = 4096;
  scn.eval_episodes = 4;
  plans.push_back(scn);

  const auto base_dir = testing::unique_temp_dir("fabric_dag_scenario");
  {
    core::ExperimentRunner runner(small_cfg(base_dir + "_probe"));
    std::vector<std::size_t> node_of_plan;
    const auto nodes = core::build_experiment_dag(runner, plans, node_of_plan);
    ASSERT_EQ(nodes.size(), 3u);  // one shared victim + two attack cells
    EXPECT_EQ(nodes[0].kind, core::DagNode::Kind::Victim);
  }

  core::DagOptions serial_opts;
  serial_opts.procs = 1;
  core::DagScheduler serial(small_cfg(base_dir + "_serial"), serial_opts);
  const auto ref = serial.run(plans);

  core::DagOptions fabric_opts;
  fabric_opts.procs = 2;
  core::DagScheduler fabric(small_cfg(base_dir + "_fabric"), fabric_opts);
  const auto out = fabric.run(plans);
  EXPECT_EQ(fabric.stats().worker_deaths, 0);

  expect_outcomes_equal(ref, out);
  std::filesystem::remove_all(base_dir + "_probe");
  std::filesystem::remove_all(base_dir + "_serial");
  std::filesystem::remove_all(base_dir + "_fabric");
}

// ---------------------------------------------------------------------------
// Atomic artifact writes
// ---------------------------------------------------------------------------

TEST(AtomicStore, ConcurrentWritersNeverTearAReader) {
  const auto dir = testing::unique_temp_dir("fabric_atomic");
  std::filesystem::create_directories(dir);
  const auto path = dir + "/store.res";
  const auto writer_body = [path](double value) {
    return [path, value](proc::Channel& ch) {
      for (int i = 0; i < 40; ++i) {
        BinaryWriter w;
        w.write_vec(std::vector<double>(2000, value + i));
        IMAP_CHECK(w.save(path));
      }
      ArchiveWriter rep;
      rep.section("done").write_bool(true);
      ch.send(rep);
    };
  };
  auto w1 = proc::WorkerProcess::spawn(writer_body(1000.0));
  auto w2 = proc::WorkerProcess::spawn(writer_body(2000.0));
  // Read concurrently with both writers: every observed file must be a
  // complete CRC-valid image from exactly one writer (pid-unique tmp +
  // atomic rename — never a torn interleaving).
  for (int i = 0; i < 2000 && !std::filesystem::exists(path); ++i)
    ::usleep(1000);  // bounded wait for the first rename to land
  ASSERT_TRUE(std::filesystem::exists(path));
  int observed = 0;
  for (int i = 0; i < 400; ++i) {
    BinaryReader r;
    ASSERT_TRUE(BinaryReader::load(path, r)) << "torn read " << i;
    const auto v = r.read_vec();
    ASSERT_EQ(v.size(), 2000u);
    EXPECT_TRUE(v[0] >= 1000.0 && v[0] < 1040.0 ? true
                                                : v[0] >= 2000.0 &&
                                                      v[0] < 2040.0)
        << "mixed payload " << v[0];
    ++observed;
  }
  ArchiveReader rep;
  ASSERT_TRUE(w1.channel().recv(rep));
  ASSERT_TRUE(w2.channel().recv(rep));
  EXPECT_EQ(w1.join(), 0);
  EXPECT_EQ(w2.join(), 0);
  EXPECT_GT(observed, 0);
  std::filesystem::remove_all(dir);
}

TEST(ConfiguredProcs, ReadsAndValidatesEnv) {
  ::setenv("IMAP_PROCS", "3", 1);
  EXPECT_EQ(proc::configured_procs(), 3);
  ::setenv("IMAP_PROCS", "bogus", 1);
  EXPECT_EQ(proc::configured_procs(), 1);
  ::setenv("IMAP_PROCS", "0", 1);
  EXPECT_EQ(proc::configured_procs(), 1);
  ::unsetenv("IMAP_PROCS");
  EXPECT_EQ(proc::configured_procs(), 1);
}

}  // namespace
}  // namespace imap
