// Generated per-(kernel, backend, shape) parity matrix for the multi-backend
// kernel layer (nn/kernel_backend.h). A macro table of shapes — spanning
// batch/in/out of 1, odd values, lane multiples, and large blocks — expands
// into one ctest case per cell, pinning every compiled backend against the
// scalar reference: exact equality for the fp64 kernels (the determinism
// contract), exact equality for the int8 kernel too (integer accumulation is
// associative and the dequant chain is fixed). Backends that are not
// compiled in or not runnable on this CPU skip their cells, so the matrix is
// portable across build hosts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/kernel_backend.h"
#include "nn/matrix.h"

namespace {

using imap::Rng;
namespace kernel = imap::nn::kernel;

// Seed folds the shape so every cell runs distinct data.
Rng shaped_rng(std::size_t in, std::size_t out, std::size_t batch) {
  return Rng(1000003 * in + 1009 * out + batch);
}

std::vector<double> randn_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

std::vector<double> transpose_of(const std::vector<double>& w, std::size_t out,
                                 std::size_t in) {
  std::vector<double> wt(in * out);
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c) wt[c * out + r] = w[r * in + c];
  return wt;
}

// nullptr when the cell should run; otherwise the skip reason.
const kernel::KernelBackend* lookup(const std::string& name,
                                    std::string& skip_reason) {
  const kernel::KernelBackend* be = kernel::find_backend(name);
  if (be == nullptr) {
    skip_reason = name + " backend not compiled into this binary";
    return nullptr;
  }
  if (!be->supported()) {
    skip_reason = name + " backend not supported by this CPU";
    return nullptr;
  }
  return be;
}

void run_affine_cell(const std::string& backend, std::size_t in,
                     std::size_t out, std::size_t batch) {
  std::string why;
  const auto* be = lookup(backend, why);
  if (be == nullptr) GTEST_SKIP() << why;
  Rng rng = shaped_rng(in, out, batch);
  const auto w = randn_vec(out * in, rng);
  const auto b = randn_vec(out, rng);
  const auto x = randn_vec(batch * in, rng);
  const auto wt = transpose_of(w, out, in);

  // Reference: the per-sample affine chain, one row at a time.
  std::vector<double> ref(batch * out);
  for (std::size_t n = 0; n < batch; ++n)
    kernel::affine(w.data(), b.data(), out, in, x.data() + n * in,
                   ref.data() + n * out);

  std::vector<double> got(batch * out, 0.0);
  be->batch_affine(w.data(), nullptr, b.data(), out, in, x.data(), batch,
                   got.data());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(ref[i], got[i]) << "uncached wt, element " << i;

  // The cached-transpose entry must produce the same bits.
  std::vector<double> got_wt(batch * out, 0.0);
  be->batch_affine(w.data(), wt.data(), b.data(), out, in, x.data(), batch,
                   got_wt.data());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(ref[i], got_wt[i]) << "cached wt, element " << i;

  // Null bias is part of the kernel contract (Matrix::matvec uses it).
  std::vector<double> ref0(batch * out), got0(batch * out, 0.0);
  for (std::size_t n = 0; n < batch; ++n)
    kernel::affine(w.data(), nullptr, out, in, x.data() + n * in,
                   ref0.data() + n * out);
  be->batch_affine(w.data(), wt.data(), nullptr, out, in, x.data(), batch,
                   got0.data());
  for (std::size_t i = 0; i < ref0.size(); ++i)
    ASSERT_EQ(ref0[i], got0[i]) << "null bias, element " << i;
}

void run_matvec_t_cell(const std::string& backend, std::size_t in,
                       std::size_t out, std::size_t batch) {
  std::string why;
  const auto* be = lookup(backend, why);
  if (be == nullptr) GTEST_SKIP() << why;
  Rng rng = shaped_rng(in, out, batch);
  const auto w = randn_vec(out * in, rng);
  const auto g = randn_vec(batch * out, rng);

  std::vector<double> ref(batch * in, 0.0);
  for (std::size_t n = 0; n < batch; ++n)
    kernel::matvec_t_acc(w.data(), out, in, g.data() + n * out,
                         ref.data() + n * in);

  std::vector<double> got(batch * in, 0.0);
  be->batch_matvec_t(w.data(), out, in, g.data(), batch, got.data());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(ref[i], got[i]) << "element " << i;
}

void run_outer_acc_cell(const std::string& backend, std::size_t in,
                        std::size_t out, std::size_t batch) {
  std::string why;
  const auto* be = lookup(backend, why);
  if (be == nullptr) GTEST_SKIP() << why;
  Rng rng = shaped_rng(in, out, batch);
  const auto g = randn_vec(batch * out, rng);
  const auto x = randn_vec(batch * in, rng);
  const auto dw0 = randn_vec(out * in, rng);  // nonzero accumulator start
  const auto db0 = randn_vec(out, rng);

  std::vector<double> ref_dw = dw0, ref_db = db0;
  for (std::size_t n = 0; n < batch; ++n) {
    kernel::outer_acc(ref_dw.data(), out, in, g.data() + n * out,
                      x.data() + n * in, 1.0);
    for (std::size_t r = 0; r < out; ++r) ref_db[r] += g[n * out + r];
  }

  std::vector<double> dw = dw0, db = db0;
  be->batch_outer_acc(g.data(), x.data(), batch, out, in, dw.data(),
                      db.data());
  for (std::size_t i = 0; i < ref_dw.size(); ++i)
    ASSERT_EQ(ref_dw[i], dw[i]) << "dw element " << i;
  for (std::size_t r = 0; r < out; ++r)
    ASSERT_EQ(ref_db[r], db[r]) << "db element " << r;
}

void run_quant_cell(const std::string& backend, std::size_t in,
                    std::size_t out, std::size_t batch) {
  std::string why;
  const auto* be = lookup(backend, why);
  if (be == nullptr) GTEST_SKIP() << why;
  if (be->quant_affine == nullptr)
    GTEST_SKIP() << backend << " has no int8 kernel (dispatch uses scalar)";
  Rng rng = shaped_rng(in, out, batch);
  const std::size_t in_pairs = (in + 1) / 2;

  // Random int8 codes in the packed layouts the kernel consumes; the last
  // pair zero-pads odd widths exactly like QuantizedMlp's builder.
  auto code = [&rng]() {
    return static_cast<std::int16_t>(rng.uniform_int(-127, 127));
  };
  std::vector<std::int16_t> wq(2 * in_pairs * out, 0);
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c)
      wq[kernel::quant_packed_index(r, c, out, in_pairs)] = code();
  std::vector<std::int16_t> xq(batch * 2 * in_pairs, 0);
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t c = 0; c < in; ++c) xq[n * 2 * in_pairs + c] = code();
  std::vector<float> row_scale(out), bias(out), xscale(batch);
  for (auto& s : row_scale)
    s = static_cast<float>(rng.uniform(1e-4, 2e-2));
  for (auto& v : bias) v = static_cast<float>(rng.normal(0.0, 0.5));
  for (auto& s : xscale) s = static_cast<float>(rng.uniform(1e-4, 2e-2));

  std::vector<float> ref(batch * out, 0.0f), got(batch * out, 0.0f);
  kernel::scalar_backend().quant_affine(wq.data(), row_scale.data(),
                                        bias.data(), out, in_pairs, xq.data(),
                                        xscale.data(), batch, ref.data());
  be->quant_affine(wq.data(), row_scale.data(), bias.data(), out, in_pairs,
                   xq.data(), xscale.data(), batch, got.data());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(ref[i], got[i]) << "element " << i;
}

void run_quant_act_cell(const std::string& backend, std::size_t /*in*/,
                        std::size_t out, std::size_t batch) {
  std::string why;
  const auto* be = lookup(backend, why);
  if (be == nullptr) GTEST_SKIP() << why;
  if (be->quant_act == nullptr)
    GTEST_SKIP() << backend
                 << " has no fused activation kernel (dispatch uses scalar)";
  Rng rng = shaped_rng(out, out, batch);
  const std::size_t out_pairs = (out + 1) / 2;
  const std::size_t stride = 2 * out_pairs;

  // Pre-activations spanning the tanh linear and saturated regions; one
  // all-zero row (when the batch allows) exercises the amax == 0 branch.
  std::vector<float> h0(batch * out);
  for (auto& v : h0) v = static_cast<float>(rng.normal(0.0, 2.0));
  if (batch > 1)
    for (std::size_t c = 0; c < out; ++c) h0[out + c] = 0.0f;

  std::vector<float> ref_h = h0, got_h = h0;
  std::vector<std::int16_t> ref_q(batch * stride, -1), got_q(batch * stride,
                                                             -1);
  std::vector<float> ref_s(batch, -1.0f), got_s(batch, -1.0f);
  kernel::scalar_backend().quant_act(ref_h.data(), batch, out, out_pairs,
                                     ref_q.data(), ref_s.data());
  be->quant_act(got_h.data(), batch, out, out_pairs, got_q.data(),
                got_s.data());
  for (std::size_t i = 0; i < ref_h.size(); ++i)
    ASSERT_EQ(ref_h[i], got_h[i]) << "tanh element " << i;
  for (std::size_t i = 0; i < ref_q.size(); ++i)
    ASSERT_EQ(ref_q[i], got_q[i]) << "code element " << i;
  for (std::size_t n = 0; n < batch; ++n)
    ASSERT_EQ(ref_s[n], got_s[n]) << "scale row " << n;
}

// --- the generated matrix ---------------------------------------------------
// Shapes: in/out/batch spanning 1, odd, lane-multiple (4/8/16-wide SIMD
// blocks plus their 16-element unrolled variants), and large. X(tag, in,
// out, batch).
#define IMAP_KERNEL_SHAPE_LIST(X)     \
  X(In1_Out1_B1, 1, 1, 1)             \
  X(In5_Out7_B1, 5, 7, 1)             \
  X(In3_Out5_B2, 3, 5, 2)             \
  X(In8_Out16_B4, 8, 16, 4)           \
  X(In17_Out33_B7, 17, 33, 7)         \
  X(In32_Out64_B16, 32, 64, 16)       \
  X(In64_Out48_B33, 64, 48, 33)       \
  X(In24_Out24_B64, 24, 24, 64)

#define IMAP_KERNEL_CELL(backend, tag, in_, out_, batch_)            \
  TEST(KernelMatrix_##backend, BatchAffine_##tag) {                  \
    run_affine_cell(#backend, in_, out_, batch_);                    \
  }                                                                  \
  TEST(KernelMatrix_##backend, BatchMatvecT_##tag) {                 \
    run_matvec_t_cell(#backend, in_, out_, batch_);                  \
  }                                                                  \
  TEST(KernelMatrix_##backend, BatchOuterAcc_##tag) {                \
    run_outer_acc_cell(#backend, in_, out_, batch_);                 \
  }                                                                  \
  TEST(KernelMatrix_##backend, QuantAffine_##tag) {                  \
    run_quant_cell(#backend, in_, out_, batch_);                     \
  }                                                                  \
  TEST(KernelMatrix_##backend, QuantAct_##tag) {                     \
    run_quant_act_cell(#backend, in_, out_, batch_);                 \
  }

#define IMAP_CELL_SCALAR(tag, in_, out_, batch_) \
  IMAP_KERNEL_CELL(scalar, tag, in_, out_, batch_)
IMAP_KERNEL_SHAPE_LIST(IMAP_CELL_SCALAR)

#define IMAP_CELL_AVX2(tag, in_, out_, batch_) \
  IMAP_KERNEL_CELL(avx2, tag, in_, out_, batch_)
IMAP_KERNEL_SHAPE_LIST(IMAP_CELL_AVX2)

#define IMAP_CELL_AVX512(tag, in_, out_, batch_) \
  IMAP_KERNEL_CELL(avx512, tag, in_, out_, batch_)
IMAP_KERNEL_SHAPE_LIST(IMAP_CELL_AVX512)

#define IMAP_CELL_NEON(tag, in_, out_, batch_) \
  IMAP_KERNEL_CELL(neon, tag, in_, out_, batch_)
IMAP_KERNEL_SHAPE_LIST(IMAP_CELL_NEON)

// --- dispatch-level behaviour ----------------------------------------------

TEST(KernelDispatch, ActiveBackendIsSupported) {
  EXPECT_TRUE(kernel::active_backend().supported());
}

TEST(KernelDispatch, ScalarBackendAlwaysPresent) {
  EXPECT_STREQ(kernel::scalar_backend().name, "scalar");
  EXPECT_TRUE(kernel::scalar_backend().supported());
  EXPECT_NE(kernel::find_backend("scalar"), nullptr);
}

TEST(KernelDispatch, RegistryIsWidestFirstAndEndsWithScalar) {
  const auto& all = kernel::all_backends();
  ASSERT_FALSE(all.empty());
  EXPECT_STREQ(all.back()->name, "scalar");
}

TEST(KernelDispatch, ScopedBackendForcesAndRestores) {
  const kernel::KernelBackend& before = kernel::active_backend();
  {
    kernel::ScopedBackend forced("scalar");
    ASSERT_TRUE(forced.activated());
    EXPECT_STREQ(kernel::active_backend().name, "scalar");
  }
  EXPECT_EQ(&kernel::active_backend(), &before);
}

TEST(KernelDispatch, ScopedBackendUnknownNameDoesNotActivate) {
  const kernel::KernelBackend& before = kernel::active_backend();
  {
    kernel::ScopedBackend forced("no-such-backend");
    EXPECT_FALSE(forced.activated());
    EXPECT_EQ(&kernel::active_backend(), &before);
  }
  EXPECT_EQ(&kernel::active_backend(), &before);
}

// The dispatcher must produce scalar-identical results whatever backend is
// forced — the end-to-end version of the per-cell pins above, exercised
// through the public kernel:: entry points (gates included).
TEST(KernelDispatch, DispatchedBatchAffineMatchesScalarUnderAllBackends) {
  const std::size_t in = 19, out = 27;
  Rng rng(77);
  const auto w = randn_vec(out * in, rng);
  const auto b = randn_vec(out, rng);
  for (std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    const auto x = randn_vec(batch * in, rng);
    std::vector<double> ref(batch * out, 0.0);
    {
      kernel::ScopedBackend forced("scalar");
      ASSERT_TRUE(forced.activated());
      kernel::batch_affine(w.data(), b.data(), out, in, x.data(), batch,
                           ref.data());
    }
    for (const auto* be : kernel::all_backends()) {
      if (!be->supported()) continue;
      kernel::ScopedBackend forced(be->name);
      ASSERT_TRUE(forced.activated());
      std::vector<double> got(batch * out, 0.0);
      kernel::batch_affine(w.data(), b.data(), out, in, x.data(), batch,
                           got.data());
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(ref[i], got[i])
            << be->name << ", batch " << batch << ", element " << i;
    }
  }
}

}  // namespace
