// Numeric-guard layer, enabled path: IMAP_NCHECK_* must fire on NaN / Inf /
// shape mismatch / out-of-bounds values. The macro is forced on for this TU
// so the test is meaningful even in builds configured without
// -DIMAP_CHECK_NUMERICS=ON (the guards are per-translation-unit).
#define IMAP_CHECK_NUMERICS 1

#include "common/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace imap {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CheckBasic, PassingCheckIsSilent) {
  EXPECT_NO_THROW(IMAP_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(IMAP_CHECK_MSG(true, "never shown"));
}

TEST(CheckBasic, FailingCheckThrowsCheckErrorWithContext) {
  try {
    IMAP_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(NumericGuardEnabled, FiniteScalarPasses) {
  EXPECT_NO_THROW(IMAP_NCHECK_FINITE(0.0, "x"));
  EXPECT_NO_THROW(IMAP_NCHECK_FINITE(-1e308, "x"));
}

TEST(NumericGuardEnabled, FiresOnNanAndInf) {
  EXPECT_THROW(IMAP_NCHECK_FINITE(kNan, "loss"), NumericError);
  EXPECT_THROW(IMAP_NCHECK_FINITE(kInf, "loss"), NumericError);
  EXPECT_THROW(IMAP_NCHECK_FINITE(-kInf, "loss"), NumericError);
}

TEST(NumericGuardEnabled, VectorGuardNamesTheBadIndex) {
  const std::vector<double> v{1.0, 2.0, kNan, 4.0};
  try {
    IMAP_NCHECK_FINITE_VEC(v, "advantages");
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("advantages[2]"), std::string::npos) << what;
  }
  const std::vector<double> ok{1.0, 2.0, 3.0};
  EXPECT_NO_THROW(IMAP_NCHECK_FINITE_VEC(ok, "advantages"));
}

TEST(NumericGuardEnabled, ShapeMismatchFires) {
  const std::vector<double> v(3, 0.0);
  EXPECT_NO_THROW(IMAP_NCHECK_SHAPE(v.size(), 3, "obs"));
  EXPECT_THROW(IMAP_NCHECK_SHAPE(v.size(), 4, "obs"), NumericError);
}

TEST(NumericGuardEnabled, BoundsGuardRejectsNanAndOutOfRange) {
  EXPECT_NO_THROW(IMAP_NCHECK_BOUNDS(0.5, 0.0, 1.0, "gamma"));
  EXPECT_NO_THROW(IMAP_NCHECK_BOUNDS(kInf, 0.0, kInf, "dist"));
  EXPECT_THROW(IMAP_NCHECK_BOUNDS(1.5, 0.0, 1.0, "gamma"), NumericError);
  EXPECT_THROW(IMAP_NCHECK_BOUNDS(-0.1, 0.0, 1.0, "gamma"), NumericError);
  EXPECT_THROW(IMAP_NCHECK_BOUNDS(kNan, 0.0, 1.0, "gamma"), NumericError);
}

TEST(NumericGuardEnabled, NumericErrorIsACheckError) {
  // Callers that already catch CheckError keep working.
  EXPECT_THROW(IMAP_NCHECK_FINITE(kNan, "x"), CheckError);
}

}  // namespace
}  // namespace imap
