// Smoke test for the ckpt_inspect CLI: a valid archive verifies (exit 0), a
// corrupted one is flagged (nonzero exit). The binary's path arrives via the
// CKPT_INSPECT environment variable, wired up in tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/serialize.h"
#include "temp_dir.h"

namespace imap {
namespace {

class CkptInspectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* bin = std::getenv("CKPT_INSPECT");
    if (!bin) GTEST_SKIP() << "CKPT_INSPECT not set (run through ctest)";
    bin_ = bin;
    dir_ = testing::unique_temp_dir("imap_test_tools");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  int run_on(const std::string& archive) const {
    // Output is part of the tool's contract but the test only pins the exit
    // status; discard the listing to keep ctest logs small.
    const std::string cmd =
        "'" + bin_ + "' '" + archive + "' > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    return rc;
  }

  std::string bin_;
  std::string dir_;
};

TEST_F(CkptInspectTest, AcceptsValidArchiveRejectsCorrupted) {
  const std::string file = dir_ + "/probe.snap";
  ArchiveWriter w;
  w.section("probe/meta").write_u64(3);
  w.section("probe/data").write_vec({1.0, 2.0, 3.0});
  ASSERT_TRUE(w.save(file));
  EXPECT_EQ(run_on(file), 0);

  // Flip one payload byte: the CRC trailer no longer matches.
  std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(24);
  char b = 0;
  f.seekg(24);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(24);
  f.write(&b, 1);
  f.close();
  EXPECT_NE(run_on(file), 0);

  // Missing files are also a nonzero exit, not a crash.
  EXPECT_NE(run_on(dir_ + "/absent.snap"), 0);
}

}  // namespace
}  // namespace imap
