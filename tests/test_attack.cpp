#include <gtest/gtest.h>

#include <cmath>

#include "attack/ap_marl.h"
#include "attack/random_attack.h"
#include "attack/sa_rl.h"
#include "attack/threat_model.h"
#include "env/hopper.h"
#include "env/you_shall_not_pass.h"

namespace imap::attack {
namespace {

// Frozen "victim" used by wrapper tests: posture-feedback runner.
rl::ActionFn feedback_victim() {
  return [](const std::vector<double>& obs) {
    const auto p = env::hopper_params();
    std::vector<double> u(p.n_joints);
    for (std::size_t j = 0; j < p.n_joints; ++j)
      u[j] = 0.3 * p.c[j] - 3.0 * (obs[0] + 0.4 * obs[1]) * p.d[j];
    return u;
  };
}

TEST(StatePerturbationEnv, AgentIsTheAdversary) {
  const auto inner = env::make_hopper();
  StatePerturbationEnv env(*inner, feedback_victim(), 0.075,
                           RewardMode::Adversary);
  EXPECT_EQ(env.obs_dim(), inner->obs_dim());
  EXPECT_EQ(env.act_dim(), inner->obs_dim());  // perturbation per obs dim
  EXPECT_DOUBLE_EQ(env.epsilon(), 0.075);
}

TEST(StatePerturbationEnv, AdversaryRewardIsNegativeSurrogate) {
  const auto inner = env::make_hopper();
  StatePerturbationEnv env(*inner, feedback_victim(), 0.075,
                           RewardMode::Adversary);
  Rng rng(3);
  env.reset(rng);
  const std::vector<double> zero(env.act_dim(), 0.0);
  for (int i = 0; i < 50; ++i) {
    const auto sr = env.step(zero);
    EXPECT_LE(sr.reward, 0.0);
    EXPECT_GE(sr.reward, -1.0);
    EXPECT_NEAR(sr.reward, -sr.surrogate, 1e-12);
    if (sr.done || sr.truncated) break;
  }
}

TEST(StatePerturbationEnv, VictimTrueModeKeepsTaskReward) {
  const auto inner = env::make_hopper();
  StatePerturbationEnv adv_env(*inner, feedback_victim(), 0.0,
                               RewardMode::Adversary);
  StatePerturbationEnv true_env(*inner, feedback_victim(), 0.0,
                                RewardMode::VictimTrue);
  Rng r1(5), r2(5);
  adv_env.reset(r1);
  true_env.reset(r2);
  const std::vector<double> zero(adv_env.act_dim(), 0.0);
  const auto sa = adv_env.step(zero);
  const auto st = true_env.step(zero);
  EXPECT_EQ(sa.obs, st.obs);          // identical dynamics
  EXPECT_NE(sa.reward, st.reward);    // different reporting
  EXPECT_GT(st.reward, 0.0);          // alive bonus flows through
}

TEST(StatePerturbationEnv, ZeroEpsilonIsNoAttack) {
  const auto inner = env::make_hopper();
  // With ε = 0 even a saturated adversary changes nothing.
  StatePerturbationEnv env(*inner, feedback_victim(), 0.0,
                           RewardMode::VictimTrue);
  auto plain = inner->clone();
  Rng r1(7), r2(7);
  env.reset(r1);
  const auto obs0 = plain->reset(r2);
  const std::vector<double> ones(env.act_dim(), 1.0);
  const auto s1 = env.step(ones);
  const auto s2 = plain->step(
      plain->action_space().clamp(feedback_victim()(obs0)));
  EXPECT_EQ(s1.obs, s2.obs);
}

TEST(StatePerturbationEnv, PerturbationIsLinfBounded) {
  // The victim records what it sees; the worst adversary action must move
  // each coordinate by exactly ±ε.
  const auto inner = env::make_hopper();
  std::vector<double> seen;
  rl::ActionFn recorder = [&seen](const std::vector<double>& o) {
    seen = o;
    return std::vector<double>(3, 0.0);
  };
  const double eps = 0.075;
  StatePerturbationEnv env(*inner, recorder, eps, RewardMode::Adversary);
  Rng rng(3);
  const auto true_obs = env.reset(rng);
  std::vector<double> dir(env.act_dim());
  for (std::size_t i = 0; i < dir.size(); ++i) dir[i] = i % 2 ? 5.0 : -5.0;
  env.step(dir);  // out-of-box action must be clamped to the ε-ball
  ASSERT_EQ(seen.size(), true_obs.size());
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_NEAR(std::abs(seen[i] - true_obs[i]), eps, 1e-12);
}

TEST(OpponentEnv, ReducesGameToAdversaryMdp) {
  const auto game = env::make_you_shall_not_pass();
  // Victim: sprint left.
  rl::ActionFn victim = [](const std::vector<double>&) {
    return std::vector<double>{-1.0, 0.0};
  };
  OpponentEnv env(*game, victim);
  EXPECT_EQ(env.obs_dim(), game->adversary_obs_dim());
  EXPECT_EQ(env.act_dim(), game->adversary_act_dim());
  Rng rng(3);
  env.reset(rng);
  double final_reward = 0.0;
  bool over = false;
  for (int i = 0; i < 200 && !over; ++i) {
    const auto sr = env.step({0.0, 0.0});  // idle blocker
    over = sr.done || sr.truncated;
    final_reward = sr.reward;
    if (!over) {
      EXPECT_DOUBLE_EQ(sr.reward, 0.0);  // sparse win/lose signal
    }
  }
  ASSERT_TRUE(over);
  EXPECT_DOUBLE_EQ(final_reward, -1.0);  // victim crossed ⇒ J_AP penalty
}

TEST(OpponentEnv, ExposesMarginalRanges) {
  const auto game = env::make_you_shall_not_pass();
  OpponentEnv env(*game, rl::ActionFn([](const std::vector<double>&) {
    return std::vector<double>{0.0, 0.0};
  }));
  EXPECT_EQ(env.victim_obs_range(), game->victim_obs_range());
  EXPECT_EQ(env.adversary_obs_range(), game->adversary_obs_range());
}

TEST(RandomAttack, BoundedAndStochastic) {
  auto attack = make_random_attack(5, Rng(3));
  const auto a1 = attack({});
  const auto a2 = attack({});
  ASSERT_EQ(a1.size(), 5u);
  EXPECT_NE(a1, a2);
  for (const double x : a1) {
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(NullAttack, AllZero) {
  auto attack = make_null_attack(4);
  for (const double x : attack({}))
    EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(EvaluateAttack, NullAttackMatchesCleanEvaluation) {
  const auto inner = env::make_hopper();
  Rng r1(9), r2(9);
  const auto clean = evaluate_attack(*inner, feedback_victim(),
                                     make_null_attack(inner->obs_dim()),
                                     0.075, 10, r1);
  const auto clean2 = evaluate_attack(*inner, feedback_victim(),
                                      make_null_attack(inner->obs_dim()),
                                      0.075, 10, r2);
  EXPECT_DOUBLE_EQ(clean.returns.mean, clean2.returns.mean);  // deterministic
  EXPECT_GT(clean.returns.mean, 200.0);  // the controller survives & runs
}

TEST(SaRl, TrainsOnAdversaryRewardAndExportsFrozenPolicy) {
  const auto inner = env::make_hopper();
  rl::PpoOptions ppo;
  ppo.steps_per_iter = 512;
  SaRl attacker(*inner, feedback_victim(), 0.075, ppo, Rng(5));
  const auto stats = attacker.train(2048);
  EXPECT_GE(stats.size(), 4u);
  const auto adv = attacker.adversary();
  Rng rng(3);
  const auto obs = inner->reset(rng);
  const auto a = adv(obs);
  EXPECT_EQ(a.size(), inner->obs_dim());
  // Frozen snapshot: identical output on identical input.
  EXPECT_EQ(adv(obs), a);
}

TEST(ApMarl, TrainsOnGame) {
  const auto game = env::make_you_shall_not_pass();
  rl::PpoOptions ppo;
  ppo.steps_per_iter = 512;
  ApMarl attacker(*game, rl::ActionFn([](const std::vector<double>&) {
    return std::vector<double>{-1.0, 0.0};
  }), ppo, Rng(5));
  const auto stats = attacker.train(1024);
  EXPECT_GE(stats.size(), 2u);
  EXPECT_EQ(attacker.adversary()(std::vector<double>(11, 0.0)).size(), 2u);
}

}  // namespace
}  // namespace imap::attack
