# Empty dependencies file for imap_tests.
# This may be replaced when dependencies are built.
