
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_attack.cpp" "tests/CMakeFiles/imap_tests.dir/test_attack.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_attack.cpp.o.d"
  "/root/repo/tests/test_bias_reduction.cpp" "tests/CMakeFiles/imap_tests.dir/test_bias_reduction.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_bias_reduction.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/imap_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_defense.cpp" "tests/CMakeFiles/imap_tests.dir/test_defense.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_defense.cpp.o.d"
  "/root/repo/tests/test_env_fetch.cpp" "tests/CMakeFiles/imap_tests.dir/test_env_fetch.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_env_fetch.cpp.o.d"
  "/root/repo/tests/test_env_locomotor.cpp" "tests/CMakeFiles/imap_tests.dir/test_env_locomotor.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_env_locomotor.cpp.o.d"
  "/root/repo/tests/test_env_maze.cpp" "tests/CMakeFiles/imap_tests.dir/test_env_maze.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_env_maze.cpp.o.d"
  "/root/repo/tests/test_env_multiagent.cpp" "tests/CMakeFiles/imap_tests.dir/test_env_multiagent.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_env_multiagent.cpp.o.d"
  "/root/repo/tests/test_env_properties.cpp" "tests/CMakeFiles/imap_tests.dir/test_env_properties.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_env_properties.cpp.o.d"
  "/root/repo/tests/test_env_sparse.cpp" "tests/CMakeFiles/imap_tests.dir/test_env_sparse.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_env_sparse.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/imap_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/imap_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gradient_attack.cpp" "tests/CMakeFiles/imap_tests.dir/test_gradient_attack.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_gradient_attack.cpp.o.d"
  "/root/repo/tests/test_imap_trainer.cpp" "tests/CMakeFiles/imap_tests.dir/test_imap_trainer.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_imap_trainer.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/imap_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_knn.cpp" "tests/CMakeFiles/imap_tests.dir/test_knn.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_knn.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/imap_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_phys.cpp" "tests/CMakeFiles/imap_tests.dir/test_phys.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_phys.cpp.o.d"
  "/root/repo/tests/test_regularizer.cpp" "tests/CMakeFiles/imap_tests.dir/test_regularizer.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_regularizer.cpp.o.d"
  "/root/repo/tests/test_rl.cpp" "tests/CMakeFiles/imap_tests.dir/test_rl.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_rl.cpp.o.d"
  "/root/repo/tests/test_rnd.cpp" "tests/CMakeFiles/imap_tests.dir/test_rnd.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_rnd.cpp.o.d"
  "/root/repo/tests/test_zoo.cpp" "tests/CMakeFiles/imap_tests.dir/test_zoo.cpp.o" "gcc" "tests/CMakeFiles/imap_tests.dir/test_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
