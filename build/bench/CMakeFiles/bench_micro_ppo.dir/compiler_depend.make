# Empty compiler generated dependencies file for bench_micro_ppo.
# This may be replaced when dependencies are built.
