file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ppo.dir/bench_micro_ppo.cpp.o"
  "CMakeFiles/bench_micro_ppo.dir/bench_micro_ppo.cpp.o.d"
  "bench_micro_ppo"
  "bench_micro_ppo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ppo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
