
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/ap_marl.cpp" "src/CMakeFiles/imap.dir/attack/ap_marl.cpp.o" "gcc" "src/CMakeFiles/imap.dir/attack/ap_marl.cpp.o.d"
  "/root/repo/src/attack/gradient_attack.cpp" "src/CMakeFiles/imap.dir/attack/gradient_attack.cpp.o" "gcc" "src/CMakeFiles/imap.dir/attack/gradient_attack.cpp.o.d"
  "/root/repo/src/attack/random_attack.cpp" "src/CMakeFiles/imap.dir/attack/random_attack.cpp.o" "gcc" "src/CMakeFiles/imap.dir/attack/random_attack.cpp.o.d"
  "/root/repo/src/attack/sa_rl.cpp" "src/CMakeFiles/imap.dir/attack/sa_rl.cpp.o" "gcc" "src/CMakeFiles/imap.dir/attack/sa_rl.cpp.o.d"
  "/root/repo/src/attack/threat_model.cpp" "src/CMakeFiles/imap.dir/attack/threat_model.cpp.o" "gcc" "src/CMakeFiles/imap.dir/attack/threat_model.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/imap.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/imap.dir/common/config.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/imap.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/imap.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/serialize.cpp" "src/CMakeFiles/imap.dir/common/serialize.cpp.o" "gcc" "src/CMakeFiles/imap.dir/common/serialize.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/imap.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/imap.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/imap.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/imap.dir/common/table.cpp.o.d"
  "/root/repo/src/core/bias_reduction.cpp" "src/CMakeFiles/imap.dir/core/bias_reduction.cpp.o" "gcc" "src/CMakeFiles/imap.dir/core/bias_reduction.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/imap.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/imap.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/imap_trainer.cpp" "src/CMakeFiles/imap.dir/core/imap_trainer.cpp.o" "gcc" "src/CMakeFiles/imap.dir/core/imap_trainer.cpp.o.d"
  "/root/repo/src/core/knn.cpp" "src/CMakeFiles/imap.dir/core/knn.cpp.o" "gcc" "src/CMakeFiles/imap.dir/core/knn.cpp.o.d"
  "/root/repo/src/core/mimic.cpp" "src/CMakeFiles/imap.dir/core/mimic.cpp.o" "gcc" "src/CMakeFiles/imap.dir/core/mimic.cpp.o.d"
  "/root/repo/src/core/regularizer.cpp" "src/CMakeFiles/imap.dir/core/regularizer.cpp.o" "gcc" "src/CMakeFiles/imap.dir/core/regularizer.cpp.o.d"
  "/root/repo/src/core/rnd.cpp" "src/CMakeFiles/imap.dir/core/rnd.cpp.o" "gcc" "src/CMakeFiles/imap.dir/core/rnd.cpp.o.d"
  "/root/repo/src/core/zoo.cpp" "src/CMakeFiles/imap.dir/core/zoo.cpp.o" "gcc" "src/CMakeFiles/imap.dir/core/zoo.cpp.o.d"
  "/root/repo/src/defense/atla.cpp" "src/CMakeFiles/imap.dir/defense/atla.cpp.o" "gcc" "src/CMakeFiles/imap.dir/defense/atla.cpp.o.d"
  "/root/repo/src/defense/radial.cpp" "src/CMakeFiles/imap.dir/defense/radial.cpp.o" "gcc" "src/CMakeFiles/imap.dir/defense/radial.cpp.o.d"
  "/root/repo/src/defense/sa_regularizer.cpp" "src/CMakeFiles/imap.dir/defense/sa_regularizer.cpp.o" "gcc" "src/CMakeFiles/imap.dir/defense/sa_regularizer.cpp.o.d"
  "/root/repo/src/defense/victim_trainer.cpp" "src/CMakeFiles/imap.dir/defense/victim_trainer.cpp.o" "gcc" "src/CMakeFiles/imap.dir/defense/victim_trainer.cpp.o.d"
  "/root/repo/src/defense/wocar.cpp" "src/CMakeFiles/imap.dir/defense/wocar.cpp.o" "gcc" "src/CMakeFiles/imap.dir/defense/wocar.cpp.o.d"
  "/root/repo/src/env/ant.cpp" "src/CMakeFiles/imap.dir/env/ant.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/ant.cpp.o.d"
  "/root/repo/src/env/fetch_reach.cpp" "src/CMakeFiles/imap.dir/env/fetch_reach.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/fetch_reach.cpp.o.d"
  "/root/repo/src/env/half_cheetah.cpp" "src/CMakeFiles/imap.dir/env/half_cheetah.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/half_cheetah.cpp.o.d"
  "/root/repo/src/env/hopper.cpp" "src/CMakeFiles/imap.dir/env/hopper.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/hopper.cpp.o.d"
  "/root/repo/src/env/humanoid.cpp" "src/CMakeFiles/imap.dir/env/humanoid.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/humanoid.cpp.o.d"
  "/root/repo/src/env/kick_and_defend.cpp" "src/CMakeFiles/imap.dir/env/kick_and_defend.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/kick_and_defend.cpp.o.d"
  "/root/repo/src/env/locomotor.cpp" "src/CMakeFiles/imap.dir/env/locomotor.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/locomotor.cpp.o.d"
  "/root/repo/src/env/maze.cpp" "src/CMakeFiles/imap.dir/env/maze.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/maze.cpp.o.d"
  "/root/repo/src/env/multiagent.cpp" "src/CMakeFiles/imap.dir/env/multiagent.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/multiagent.cpp.o.d"
  "/root/repo/src/env/registry.cpp" "src/CMakeFiles/imap.dir/env/registry.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/registry.cpp.o.d"
  "/root/repo/src/env/sparse.cpp" "src/CMakeFiles/imap.dir/env/sparse.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/sparse.cpp.o.d"
  "/root/repo/src/env/walker2d.cpp" "src/CMakeFiles/imap.dir/env/walker2d.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/walker2d.cpp.o.d"
  "/root/repo/src/env/you_shall_not_pass.cpp" "src/CMakeFiles/imap.dir/env/you_shall_not_pass.cpp.o" "gcc" "src/CMakeFiles/imap.dir/env/you_shall_not_pass.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/CMakeFiles/imap.dir/nn/adam.cpp.o" "gcc" "src/CMakeFiles/imap.dir/nn/adam.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/CMakeFiles/imap.dir/nn/checkpoint.cpp.o" "gcc" "src/CMakeFiles/imap.dir/nn/checkpoint.cpp.o.d"
  "/root/repo/src/nn/gaussian.cpp" "src/CMakeFiles/imap.dir/nn/gaussian.cpp.o" "gcc" "src/CMakeFiles/imap.dir/nn/gaussian.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/CMakeFiles/imap.dir/nn/matrix.cpp.o" "gcc" "src/CMakeFiles/imap.dir/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/imap.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/imap.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/phys/body.cpp" "src/CMakeFiles/imap.dir/phys/body.cpp.o" "gcc" "src/CMakeFiles/imap.dir/phys/body.cpp.o.d"
  "/root/repo/src/phys/vec2.cpp" "src/CMakeFiles/imap.dir/phys/vec2.cpp.o" "gcc" "src/CMakeFiles/imap.dir/phys/vec2.cpp.o.d"
  "/root/repo/src/phys/world.cpp" "src/CMakeFiles/imap.dir/phys/world.cpp.o" "gcc" "src/CMakeFiles/imap.dir/phys/world.cpp.o.d"
  "/root/repo/src/rl/evaluate.cpp" "src/CMakeFiles/imap.dir/rl/evaluate.cpp.o" "gcc" "src/CMakeFiles/imap.dir/rl/evaluate.cpp.o.d"
  "/root/repo/src/rl/gae.cpp" "src/CMakeFiles/imap.dir/rl/gae.cpp.o" "gcc" "src/CMakeFiles/imap.dir/rl/gae.cpp.o.d"
  "/root/repo/src/rl/normalizer.cpp" "src/CMakeFiles/imap.dir/rl/normalizer.cpp.o" "gcc" "src/CMakeFiles/imap.dir/rl/normalizer.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "src/CMakeFiles/imap.dir/rl/ppo.cpp.o" "gcc" "src/CMakeFiles/imap.dir/rl/ppo.cpp.o.d"
  "/root/repo/src/rl/rollout.cpp" "src/CMakeFiles/imap.dir/rl/rollout.cpp.o" "gcc" "src/CMakeFiles/imap.dir/rl/rollout.cpp.o.d"
  "/root/repo/src/rl/space.cpp" "src/CMakeFiles/imap.dir/rl/space.cpp.o" "gcc" "src/CMakeFiles/imap.dir/rl/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
