# Empty dependencies file for imap.
# This may be replaced when dependencies are built.
