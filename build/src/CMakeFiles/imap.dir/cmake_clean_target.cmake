file(REMOVE_RECURSE
  "libimap.a"
)
