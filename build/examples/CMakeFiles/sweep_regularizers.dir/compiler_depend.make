# Empty compiler generated dependencies file for sweep_regularizers.
# This may be replaced when dependencies are built.
