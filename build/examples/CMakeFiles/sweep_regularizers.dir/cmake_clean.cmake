file(REMOVE_RECURSE
  "CMakeFiles/sweep_regularizers.dir/sweep_regularizers.cpp.o"
  "CMakeFiles/sweep_regularizers.dir/sweep_regularizers.cpp.o.d"
  "sweep_regularizers"
  "sweep_regularizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_regularizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
