# Empty compiler generated dependencies file for block_the_runner.
# This may be replaced when dependencies are built.
