file(REMOVE_RECURSE
  "CMakeFiles/block_the_runner.dir/block_the_runner.cpp.o"
  "CMakeFiles/block_the_runner.dir/block_the_runner.cpp.o.d"
  "block_the_runner"
  "block_the_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_the_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
