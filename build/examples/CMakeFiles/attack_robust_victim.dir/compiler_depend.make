# Empty compiler generated dependencies file for attack_robust_victim.
# This may be replaced when dependencies are built.
