file(REMOVE_RECURSE
  "CMakeFiles/attack_robust_victim.dir/attack_robust_victim.cpp.o"
  "CMakeFiles/attack_robust_victim.dir/attack_robust_victim.cpp.o.d"
  "attack_robust_victim"
  "attack_robust_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_robust_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
